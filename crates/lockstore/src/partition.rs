//! The lock table's replica-side state: one [`LockPartition`] per key.

use std::collections::BTreeMap;

use music_quorumstore::{Partition, WriteStamp, HEADER_BYTES};
use music_simnet::time::SimTime;

/// A per-key lock reference: unique, increasing, good for one critical
/// section (§III-A).
///
/// References start at 1; [`LockRef::NONE`] (0) is never enqueued.
///
/// # Examples
///
/// ```
/// use music_lockstore::LockRef;
///
/// let first = LockRef::new(1);
/// let second = LockRef::new(2);
/// assert!(second > first);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LockRef(u64);

impl LockRef {
    /// The null reference (never granted).
    pub const NONE: LockRef = LockRef(0);

    /// Creates a reference from its counter value.
    pub const fn new(v: u64) -> Self {
        LockRef(v)
    }

    /// The raw counter value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The next reference after this one.
    pub const fn next(self) -> LockRef {
        LockRef(self.0 + 1)
    }
}

impl std::fmt::Display for LockRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lr:{}", self.0)
    }
}

/// One lock-queue row: presence (tombstoned on dequeue) and the
/// critical-section start time, each an independently stamped LWW cell.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct LockEntry {
    /// Whether the reference is still queued.
    pub present: bool,
    stamp: WriteStamp,
    /// When the holder's critical section began (set on lock grant; used to
    /// enforce the maximum critical-section duration `T`).
    pub start_time: Option<SimTime>,
    start_stamp: WriteStamp,
    /// The creating client's idempotency token: a `createLockRef` retried
    /// after its first attempt actually committed finds its own enqueue
    /// instead of minting an orphan reference.
    pub token: u64,
    /// When set, this reference is a *lease*: pre-minted for the departing
    /// holder at release time, valid until the recorded deadline. Travels
    /// with the presence cell (it is written by the same LWT that inserts
    /// the row and never changes afterwards).
    pub lease_until: Option<SimTime>,
}

/// Mutations of a lock partition — each corresponds to one lock-table CQL
/// statement in §X-A4.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LockMutation {
    /// `createLockRef`'s batch: set `guard = lock_ref` and insert the
    /// `(key, lock_ref)` row.
    Enqueue {
        /// The freshly minted reference.
        lock_ref: LockRef,
        /// The creating client's idempotency token.
        token: u64,
        /// Lease deadline when this row is a pre-minted lease (repair
        /// re-emission; normal `createLockRef` enqueues pass `None`).
        lease_until: Option<SimTime>,
    },
    /// `lsDequeue`: delete the `(key, lock_ref)` row.
    Dequeue {
        /// The reference to remove.
        lock_ref: LockRef,
    },
    /// `releaseLock` with nothing queued behind the holder: tombstone the
    /// released reference and pre-mint the next one as a *lease* for the
    /// same client, in one LWT (the fast-path grant of the lease design).
    ReleaseWithLease {
        /// The reference being released.
        released: LockRef,
        /// The pre-minted successor (becomes the new queue head).
        next_ref: LockRef,
        /// Idempotency token of the minting call.
        token: u64,
        /// Lease expiry deadline.
        until: SimTime,
    },
    /// A competing `createLockRef` that found an unclaimed lease at the
    /// head: atomically collect the lease row and enqueue the competitor's
    /// fresh reference (break-on-enqueue).
    BreakEnqueue {
        /// The leased reference being broken.
        broken: LockRef,
        /// The competitor's freshly minted reference.
        lock_ref: LockRef,
        /// Idempotency token of the minting call.
        token: u64,
    },
    /// Combined enqueue (waiter batching): mint `count` consecutive
    /// references in one LWT round, optionally collecting an unclaimed
    /// lease at the head in the same round (the batched twin of
    /// [`LockMutation::BreakEnqueue`]). Reference `first + i` carries
    /// idempotency token `token + i`, so the whole batch keeps queue
    /// (ascending-reference) order — waiter `i` of the round is strictly
    /// behind waiter `i − 1`, which keeps the FIFO-with-preemption
    /// refinement clean.
    EnqueueBatch {
        /// An unclaimed leased head collected by this round, or
        /// [`LockRef::NONE`] when the batch queues without breaking.
        broken: LockRef,
        /// The first freshly minted reference; the batch occupies
        /// `first .. first + count`.
        first: LockRef,
        /// How many references the batch mints (≥ 1).
        count: u32,
        /// Idempotency token of the round's first waiter; waiter `i` gets
        /// `token + i`.
        token: u64,
    },
    /// Record the critical-section start time for a granted reference.
    SetStartTime {
        /// The granted reference.
        lock_ref: LockRef,
        /// Grant instant.
        at: SimTime,
    },
    /// Raise the guard counter without touching any row (used by read
    /// repair; merges by `max`).
    RaiseGuard {
        /// Floor for the counter.
        to: u64,
    },
}

/// How far below the guard a dequeued reference's tombstone is retained.
///
/// Tombstones block stale straggler enqueues (late retransmissions or
/// repairs) from resurrecting a collected reference, so they cannot be
/// dropped immediately — but keeping them forever grows every hot key's
/// partition by one dead row per critical section. Stragglers are bounded
/// by the retransmission window (tens of seconds), while minting
/// `TOMBSTONE_GRACE` new references on one key takes far longer, so pruning
/// below `guard − TOMBSTONE_GRACE` is safe (Cassandra's `gc_grace_seconds`,
/// expressed in references).
const TOMBSTONE_GRACE: u64 = 1024;

/// Replica-side state of one key's lock queue.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LockPartition {
    /// The mint counter. Merges by `max` (it only ever grows), which makes
    /// its convergence order-independent without a stamp.
    guard: u64,
    entries: BTreeMap<LockRef, LockEntry>,
}

impl LockPartition {
    /// Current guard value (the last minted reference counter).
    pub fn guard(&self) -> u64 {
        self.guard
    }

    /// First (smallest) queued reference and its entry, if any — the
    /// `lsPeek` result.
    pub fn head(&self) -> Option<(LockRef, LockEntry)> {
        self.entries
            .iter()
            .find(|(_, e)| e.present)
            .map(|(r, e)| (*r, *e))
    }

    /// All queued references in queue (ascending) order.
    pub fn queue(&self) -> Vec<LockRef> {
        self.entries
            .iter()
            .filter(|(_, e)| e.present)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Whether `lock_ref` is still queued.
    pub fn contains(&self, lock_ref: LockRef) -> bool {
        self.entries.get(&lock_ref).is_some_and(|e| e.present)
    }

    /// The queue head when it is an *unclaimed* lease: a pre-minted
    /// reference whose owner has not re-entered yet (no start time).
    /// Returns the reference and its expiry deadline.
    pub fn lease_head(&self) -> Option<(LockRef, SimTime)> {
        self.head()
            .and_then(|(r, e)| match (e.lease_until, e.start_time) {
                (Some(until), None) => Some((r, until)),
                _ => None,
            })
    }

    /// The entry for `lock_ref`, present or tombstoned.
    pub fn entry(&self, lock_ref: LockRef) -> Option<LockEntry> {
        self.entries.get(&lock_ref).copied()
    }

    /// The queued reference created under `token`, if any (idempotent
    /// `createLockRef` lookup). Tombstoned entries do not count — if the
    /// earlier enqueue was already collected, a retry mints a fresh one.
    pub fn find_token(&self, token: u64) -> Option<LockRef> {
        self.entries
            .iter()
            .find(|(_, e)| e.present && e.token == token)
            .map(|(r, _)| *r)
    }

    /// Prunes tombstoned entries old enough that no straggler write for
    /// them can still be in flight (bounding per-key memory; see
    /// [`TOMBSTONE_GRACE`]).
    fn gc_tombstones(&mut self) {
        let cutoff = self.guard.saturating_sub(TOMBSTONE_GRACE);
        if cutoff == 0 {
            return;
        }
        self.entries.retain(|r, e| e.present || r.value() >= cutoff);
    }

    fn merge_cell(&mut self, lock_ref: LockRef, other: &LockEntry) {
        let e = self.entries.entry(lock_ref).or_default();
        if other.stamp > e.stamp {
            e.present = other.present;
            e.stamp = other.stamp;
            e.token = other.token;
            e.lease_until = other.lease_until;
        }
        if other.start_stamp > e.start_stamp {
            e.start_time = other.start_time;
            e.start_stamp = other.start_stamp;
        }
    }

    /// LWW update of one presence cell (shared by every mutation arm).
    fn set_presence(
        &mut self,
        lock_ref: LockRef,
        stamp: WriteStamp,
        present: bool,
        token: u64,
        lease_until: Option<SimTime>,
    ) {
        let e = self.entries.entry(lock_ref).or_default();
        if stamp > e.stamp {
            e.present = present;
            e.stamp = stamp;
            e.token = token;
            e.lease_until = lease_until;
        }
    }
}

impl Partition for LockPartition {
    type Mutation = LockMutation;
    /// Snapshots are whole partitions; reconciliation merges cell-wise.
    type Snapshot = LockPartition;

    fn snapshot(&self) -> LockPartition {
        self.clone()
    }

    fn apply(&mut self, mutation: &LockMutation, stamp: WriteStamp) {
        match *mutation {
            LockMutation::Enqueue {
                lock_ref,
                token,
                lease_until,
            } => {
                self.guard = self.guard.max(lock_ref.value());
                self.set_presence(lock_ref, stamp, true, token, lease_until);
            }
            LockMutation::Dequeue { lock_ref } => {
                let e = self.entries.entry(lock_ref).or_default();
                if stamp > e.stamp {
                    e.present = false;
                    e.stamp = stamp;
                    e.lease_until = None;
                }
            }
            LockMutation::ReleaseWithLease {
                released,
                next_ref,
                token,
                until,
            } => {
                self.guard = self.guard.max(next_ref.value());
                self.set_presence(released, stamp, false, 0, None);
                self.set_presence(next_ref, stamp, true, token, Some(until));
            }
            LockMutation::BreakEnqueue {
                broken,
                lock_ref,
                token,
            } => {
                self.guard = self.guard.max(lock_ref.value());
                self.set_presence(broken, stamp, false, 0, None);
                self.set_presence(lock_ref, stamp, true, token, None);
            }
            LockMutation::EnqueueBatch {
                broken,
                first,
                count,
                token,
            } => {
                let count = u64::from(count.max(1));
                self.guard = self.guard.max(first.value() + count - 1);
                if broken != LockRef::NONE {
                    self.set_presence(broken, stamp, false, 0, None);
                }
                for i in 0..count {
                    self.set_presence(
                        LockRef::new(first.value() + i),
                        stamp,
                        true,
                        token + i,
                        None,
                    );
                }
            }
            LockMutation::SetStartTime { lock_ref, at } => {
                let e = self.entries.entry(lock_ref).or_default();
                if stamp > e.start_stamp {
                    e.start_time = Some(at);
                    e.start_stamp = stamp;
                }
            }
            LockMutation::RaiseGuard { to } => {
                self.guard = self.guard.max(to);
            }
        }
        self.gc_tombstones();
    }

    fn reconcile(mut a: LockPartition, b: LockPartition) -> LockPartition {
        a.guard = a.guard.max(b.guard);
        for (r, e) in &b.entries {
            a.merge_cell(*r, e);
        }
        a.gc_tombstones();
        a
    }

    fn snapshot_bytes(s: &LockPartition) -> usize {
        HEADER_BYTES + 8 + 24 * s.entries.len()
    }

    fn mutation_bytes(m: &LockMutation) -> usize {
        match m {
            // Composite mutations carry two presence cells.
            LockMutation::ReleaseWithLease { .. } | LockMutation::BreakEnqueue { .. } => 48,
            // One cell per minted reference plus the (possible) break cell.
            LockMutation::EnqueueBatch { count, .. } => 24 + 24 * (*count).max(1) as usize,
            _ => 24,
        }
    }

    fn exists(&self) -> bool {
        self.guard > 0 || !self.entries.is_empty()
    }

    fn repair(newest: &LockPartition) -> Vec<(LockMutation, WriteStamp)> {
        let mut out = Vec::with_capacity(newest.entries.len() * 2 + 1);
        if newest.guard > 0 {
            // Any stamp works: guard merges by max.
            out.push((
                LockMutation::RaiseGuard { to: newest.guard },
                WriteStamp::new(1),
            ));
        }
        for (r, e) in &newest.entries {
            if e.stamp > WriteStamp::ZERO {
                let m = if e.present {
                    LockMutation::Enqueue {
                        lock_ref: *r,
                        token: e.token,
                        lease_until: e.lease_until,
                    }
                } else {
                    LockMutation::Dequeue { lock_ref: *r }
                };
                out.push((m, e.stamp));
            }
            if let Some(at) = e.start_time {
                out.push((
                    LockMutation::SetStartTime { lock_ref: *r, at },
                    e.start_stamp,
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Wire codecs: lock state crosses sockets in remote deployments
// (`music-node` hosts the lock table; `RemoteTable<LockPartition, _>` is
// the coordinator). Implemented here because the entries' private LWW
// stamps must survive the trip bit-for-bit — replica convergence and
// read-repair divergence detection both compare full cell state.
// ---------------------------------------------------------------------------

use music_runtime::{Wire, WireError, WireReader};

impl Wire for LockRef {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(LockRef(u64::decode(r)?))
    }
}

impl Wire for LockEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.present.encode(buf);
        self.stamp.encode(buf);
        self.start_time.encode(buf);
        self.start_stamp.encode(buf);
        self.token.encode(buf);
        self.lease_until.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(LockEntry {
            present: bool::decode(r)?,
            stamp: Wire::decode(r)?,
            start_time: Wire::decode(r)?,
            start_stamp: Wire::decode(r)?,
            token: u64::decode(r)?,
            lease_until: Wire::decode(r)?,
        })
    }
}

impl Wire for LockMutation {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            LockMutation::Enqueue {
                lock_ref,
                token,
                lease_until,
            } => {
                buf.push(0);
                lock_ref.encode(buf);
                token.encode(buf);
                lease_until.encode(buf);
            }
            LockMutation::Dequeue { lock_ref } => {
                buf.push(1);
                lock_ref.encode(buf);
            }
            LockMutation::ReleaseWithLease {
                released,
                next_ref,
                token,
                until,
            } => {
                buf.push(2);
                released.encode(buf);
                next_ref.encode(buf);
                token.encode(buf);
                until.encode(buf);
            }
            LockMutation::BreakEnqueue {
                broken,
                lock_ref,
                token,
            } => {
                buf.push(3);
                broken.encode(buf);
                lock_ref.encode(buf);
                token.encode(buf);
            }
            LockMutation::SetStartTime { lock_ref, at } => {
                buf.push(4);
                lock_ref.encode(buf);
                at.encode(buf);
            }
            LockMutation::RaiseGuard { to } => {
                buf.push(5);
                to.encode(buf);
            }
            LockMutation::EnqueueBatch {
                broken,
                first,
                count,
                token,
            } => {
                buf.push(6);
                broken.encode(buf);
                first.encode(buf);
                count.encode(buf);
                token.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => LockMutation::Enqueue {
                lock_ref: Wire::decode(r)?,
                token: u64::decode(r)?,
                lease_until: Wire::decode(r)?,
            },
            1 => LockMutation::Dequeue {
                lock_ref: Wire::decode(r)?,
            },
            2 => LockMutation::ReleaseWithLease {
                released: Wire::decode(r)?,
                next_ref: Wire::decode(r)?,
                token: u64::decode(r)?,
                until: Wire::decode(r)?,
            },
            3 => LockMutation::BreakEnqueue {
                broken: Wire::decode(r)?,
                lock_ref: Wire::decode(r)?,
                token: u64::decode(r)?,
            },
            4 => LockMutation::SetStartTime {
                lock_ref: Wire::decode(r)?,
                at: Wire::decode(r)?,
            },
            5 => LockMutation::RaiseGuard {
                to: u64::decode(r)?,
            },
            6 => LockMutation::EnqueueBatch {
                broken: Wire::decode(r)?,
                first: Wire::decode(r)?,
                count: u32::decode(r)?,
                token: u64::decode(r)?,
            },
            _ => return Err(WireError("invalid lock mutation tag")),
        })
    }
}

impl Wire for LockPartition {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.guard.encode(buf);
        (self.entries.len() as u32).encode(buf);
        for (r, e) in &self.entries {
            r.encode(buf);
            e.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let guard = u64::decode(r)?;
        let n = r.u32()? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let lr = LockRef::decode(r)?;
            let e = LockEntry::decode(r)?;
            entries.insert(lr, e);
        }
        Ok(LockPartition { guard, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> WriteStamp {
        WriteStamp::new(v)
    }

    #[test]
    fn enqueue_orders_queue_by_lock_ref() {
        let mut p = LockPartition::default();
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(2),
                token: 0,
                lease_until: None,
            },
            ts(2),
        );
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 0,
                lease_until: None,
            },
            ts(1),
        );
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(3),
                token: 0,
                lease_until: None,
            },
            ts(3),
        );
        assert_eq!(
            p.queue(),
            vec![LockRef::new(1), LockRef::new(2), LockRef::new(3)]
        );
        assert_eq!(p.head().unwrap().0, LockRef::new(1));
        assert_eq!(p.guard(), 3);
    }

    #[test]
    fn dequeue_tombstones_and_head_advances() {
        let mut p = LockPartition::default();
        for i in 1..=3 {
            p.apply(
                &LockMutation::Enqueue {
                    lock_ref: LockRef::new(i),
                    token: 0,
                    lease_until: None,
                },
                ts(i),
            );
        }
        p.apply(
            &LockMutation::Dequeue {
                lock_ref: LockRef::new(1),
            },
            ts(4),
        );
        assert_eq!(p.head().unwrap().0, LockRef::new(2));
        assert!(!p.contains(LockRef::new(1)));
        // A stale (re-ordered) enqueue of 1 must not resurrect it.
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 0,
                lease_until: None,
            },
            ts(1),
        );
        assert!(!p.contains(LockRef::new(1)));
    }

    #[test]
    fn dequeue_of_middle_entry_is_fine() {
        // Workers that lose the acquire race evict their own (non-head)
        // reference (`removeLockReference`, §VII-a).
        let mut p = LockPartition::default();
        for i in 1..=3 {
            p.apply(
                &LockMutation::Enqueue {
                    lock_ref: LockRef::new(i),
                    token: 0,
                    lease_until: None,
                },
                ts(i),
            );
        }
        p.apply(
            &LockMutation::Dequeue {
                lock_ref: LockRef::new(2),
            },
            ts(4),
        );
        assert_eq!(p.queue(), vec![LockRef::new(1), LockRef::new(3)]);
    }

    #[test]
    fn start_time_is_an_independent_cell() {
        let mut p = LockPartition::default();
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 0,
                lease_until: None,
            },
            ts(1),
        );
        p.apply(
            &LockMutation::SetStartTime {
                lock_ref: LockRef::new(1),
                at: SimTime::from_micros(500),
            },
            ts(2),
        );
        let (_, e) = p.head().unwrap();
        assert_eq!(e.start_time, Some(SimTime::from_micros(500)));
        // Dequeue does not erase the recorded start time cell stampwise.
        p.apply(
            &LockMutation::Dequeue {
                lock_ref: LockRef::new(1),
            },
            ts(3),
        );
        assert_eq!(
            p.entry(LockRef::new(1)).unwrap().start_time,
            Some(SimTime::from_micros(500))
        );
    }

    #[test]
    fn reconcile_merges_cellwise() {
        let mut a = LockPartition::default();
        let mut b = LockPartition::default();
        a.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 0,
                lease_until: None,
            },
            ts(1),
        );
        b.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 0,
                lease_until: None,
            },
            ts(1),
        );
        b.apply(
            &LockMutation::Dequeue {
                lock_ref: LockRef::new(1),
            },
            ts(2),
        );
        b.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(2),
                token: 0,
                lease_until: None,
            },
            ts(3),
        );
        let m = LockPartition::reconcile(a, b.clone());
        assert_eq!(m.queue(), vec![LockRef::new(2)]);
        assert_eq!(m.guard(), 2);
        // Reconcile is commutative for these states.
        let mut a2 = LockPartition::default();
        a2.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 0,
                lease_until: None,
            },
            ts(1),
        );
        let m2 = LockPartition::reconcile(b, a2);
        assert_eq!(m2.queue(), vec![LockRef::new(2)]);
    }

    #[test]
    fn apply_permutations_converge() {
        let muts = [
            (
                LockMutation::Enqueue {
                    lock_ref: LockRef::new(1),
                    token: 0,
                    lease_until: None,
                },
                ts(1),
            ),
            (
                LockMutation::Enqueue {
                    lock_ref: LockRef::new(2),
                    token: 0,
                    lease_until: None,
                },
                ts(2),
            ),
            (
                LockMutation::Dequeue {
                    lock_ref: LockRef::new(1),
                },
                ts(3),
            ),
        ];
        let orders = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut results = Vec::new();
        for order in orders {
            let mut p = LockPartition::default();
            for i in order {
                let (m, s) = muts[i];
                p.apply(&m, s);
            }
            results.push((p.queue(), p.guard()));
        }
        for r in &results {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(results[0].0, vec![LockRef::new(2)]);
    }

    #[test]
    fn lock_ref_display_and_next() {
        assert_eq!(LockRef::new(7).to_string(), "lr:7");
        assert_eq!(LockRef::NONE.next(), LockRef::new(1));
    }

    #[test]
    fn find_token_locates_live_enqueues_only() {
        let mut p = LockPartition::default();
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 77,
                lease_until: None,
            },
            ts(1),
        );
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(2),
                token: 88,
                lease_until: None,
            },
            ts(2),
        );
        assert_eq!(p.find_token(77), Some(LockRef::new(1)));
        assert_eq!(p.find_token(88), Some(LockRef::new(2)));
        assert_eq!(p.find_token(99), None);
        // A collected (dequeued) reference no longer answers for its token:
        // the retrying client must mint a fresh one.
        p.apply(
            &LockMutation::Dequeue {
                lock_ref: LockRef::new(1),
            },
            ts(3),
        );
        assert_eq!(p.find_token(77), None);
    }

    #[test]
    fn old_tombstones_are_pruned_but_recent_ones_survive() {
        let mut p = LockPartition::default();
        // Mint + collect far more references than the grace window.
        for i in 1..=(TOMBSTONE_GRACE + 200) {
            p.apply(
                &LockMutation::Enqueue {
                    lock_ref: LockRef::new(i),
                    token: i,
                    lease_until: None,
                },
                ts(2 * i),
            );
            p.apply(
                &LockMutation::Dequeue {
                    lock_ref: LockRef::new(i),
                },
                ts(2 * i + 1),
            );
        }
        // Memory stays bounded by the grace window.
        assert!(
            p.entry(LockRef::new(1)).is_none(),
            "ancient tombstone pruned"
        );
        assert!(
            p.entry(LockRef::new(TOMBSTONE_GRACE + 150)).is_some(),
            "recent tombstone retained (still blocks stale enqueues)"
        );
        // A stale straggler enqueue of a *recent* collected ref still loses.
        let recent = LockRef::new(TOMBSTONE_GRACE + 150);
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: recent,
                token: 0,
                lease_until: None,
            },
            ts(1),
        );
        assert!(!p.contains(recent));
        // Queue is empty and guard preserved.
        assert!(p.head().is_none());
        assert_eq!(p.guard(), TOMBSTONE_GRACE + 200);
    }

    #[test]
    fn wire_roundtrip_preserves_full_cell_state() {
        let mut p = LockPartition::default();
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 42,
                lease_until: Some(SimTime::from_micros(9_000)),
            },
            ts(5),
        );
        p.apply(
            &LockMutation::SetStartTime {
                lock_ref: LockRef::new(1),
                at: SimTime::from_micros(500),
            },
            ts(6),
        );
        p.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(2),
                token: 43,
                lease_until: None,
            },
            ts(7),
        );
        p.apply(
            &LockMutation::Dequeue {
                lock_ref: LockRef::new(2),
            },
            ts(8),
        );
        let back = LockPartition::from_slice(&p.to_vec()).unwrap();
        assert_eq!(back, p, "codec must be lossless (stamps included)");
        let muts = [
            LockMutation::Enqueue {
                lock_ref: LockRef::new(3),
                token: 9,
                lease_until: None,
            },
            LockMutation::Dequeue {
                lock_ref: LockRef::new(3),
            },
            LockMutation::ReleaseWithLease {
                released: LockRef::new(3),
                next_ref: LockRef::new(4),
                token: 10,
                until: SimTime::from_micros(77),
            },
            LockMutation::BreakEnqueue {
                broken: LockRef::new(4),
                lock_ref: LockRef::new(5),
                token: 11,
            },
            LockMutation::SetStartTime {
                lock_ref: LockRef::new(5),
                at: SimTime::from_micros(88),
            },
            LockMutation::RaiseGuard { to: 99 },
            LockMutation::EnqueueBatch {
                broken: LockRef::new(5),
                first: LockRef::new(6),
                count: 3,
                token: 12,
            },
        ];
        for m in muts {
            assert_eq!(LockMutation::from_slice(&m.to_vec()).unwrap(), m);
        }
    }

    #[test]
    fn enqueue_batch_mints_consecutive_refs_in_queue_order() {
        let mut p = LockPartition::default();
        p.apply(
            &LockMutation::EnqueueBatch {
                broken: LockRef::NONE,
                first: LockRef::new(1),
                count: 3,
                token: 100,
            },
            ts(1),
        );
        assert_eq!(
            p.queue(),
            vec![LockRef::new(1), LockRef::new(2), LockRef::new(3)]
        );
        assert_eq!(p.guard(), 3);
        // Waiter i's token is token + i: each waiter adopts its own ref on
        // an idempotent retry.
        assert_eq!(p.find_token(100), Some(LockRef::new(1)));
        assert_eq!(p.find_token(102), Some(LockRef::new(3)));
        // None of the batch rows is a lease.
        for r in p.queue() {
            assert_eq!(p.entry(r).unwrap().lease_until, None);
        }
    }

    #[test]
    fn enqueue_batch_collects_a_leased_head_in_the_same_round() {
        let mut p = LockPartition::default();
        p.apply(
            &LockMutation::ReleaseWithLease {
                released: LockRef::new(1),
                next_ref: LockRef::new(2),
                token: 7,
                until: SimTime::from_micros(5_000),
            },
            ts(1),
        );
        assert!(p.lease_head().is_some());
        p.apply(
            &LockMutation::EnqueueBatch {
                broken: LockRef::new(2),
                first: LockRef::new(3),
                count: 2,
                token: 50,
            },
            ts(2),
        );
        assert!(!p.contains(LockRef::new(2)), "lease collected");
        assert_eq!(p.queue(), vec![LockRef::new(3), LockRef::new(4)]);
        assert_eq!(p.guard(), 4);
    }

    #[test]
    fn enqueue_batch_converges_under_permutations() {
        let muts = [
            (
                LockMutation::EnqueueBatch {
                    broken: LockRef::NONE,
                    first: LockRef::new(1),
                    count: 2,
                    token: 10,
                },
                ts(1),
            ),
            (
                LockMutation::Dequeue {
                    lock_ref: LockRef::new(1),
                },
                ts(2),
            ),
            (
                LockMutation::EnqueueBatch {
                    broken: LockRef::NONE,
                    first: LockRef::new(3),
                    count: 2,
                    token: 20,
                },
                ts(3),
            ),
        ];
        let orders = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut results = Vec::new();
        for order in orders {
            let mut p = LockPartition::default();
            for i in order {
                let (m, s) = muts[i];
                p.apply(&m, s);
            }
            results.push((p.queue(), p.guard()));
        }
        for r in &results {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(
            results[0].0,
            vec![LockRef::new(2), LockRef::new(3), LockRef::new(4)]
        );
    }

    #[test]
    fn reconcile_carries_tokens() {
        let mut a = LockPartition::default();
        let mut b = LockPartition::default();
        b.apply(
            &LockMutation::Enqueue {
                lock_ref: LockRef::new(1),
                token: 42,
                lease_until: None,
            },
            ts(5),
        );
        a = LockPartition::reconcile(a, b);
        assert_eq!(a.find_token(42), Some(LockRef::new(1)));
    }
}
