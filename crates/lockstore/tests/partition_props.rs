//! Property tests on the lock partition algebra: order-independent
//! convergence, reconcile laws, and queue-head monotonicity under
//! dequeues.

use music_lockstore::{LockMutation, LockPartition, LockRef};
use music_quorumstore::{Partition, WriteStamp};
use music_simnet::time::SimTime;
use proptest::prelude::*;

fn arb_mutation() -> impl Strategy<Value = LockMutation> {
    prop_oneof![
        (1u64..6, 0u64..1000).prop_map(|(r, lease)| {
            LockMutation::Enqueue {
                lock_ref: LockRef::new(r),
                token: r,
                // 0 = no lease, otherwise a leased row (repair re-emission).
                lease_until: (lease > 0).then(|| SimTime::from_micros(lease)),
            }
        }),
        (1u64..6).prop_map(|r| LockMutation::Dequeue {
            lock_ref: LockRef::new(r)
        }),
        (1u64..6, 0u64..1000).prop_map(|(r, t)| LockMutation::SetStartTime {
            lock_ref: LockRef::new(r),
            at: SimTime::from_micros(t),
        }),
        (1u64..6, 1u64..6, 1u64..1000).prop_map(|(a, b, u)| LockMutation::ReleaseWithLease {
            released: LockRef::new(a),
            next_ref: LockRef::new(b),
            token: a ^ 0x10,
            until: SimTime::from_micros(u),
        }),
        (1u64..6, 1u64..6).prop_map(|(a, b)| LockMutation::BreakEnqueue {
            broken: LockRef::new(a),
            lock_ref: LockRef::new(b),
            token: a ^ 0x20,
        }),
    ]
}

fn fingerprint(p: &LockPartition) -> String {
    // Guard, queued refs, and each row's lease deadline: everything the
    // lease fast path can observe must converge, not just the queue shape.
    let rows: Vec<(u64, Option<SimTime>)> = p
        .queue()
        .iter()
        .map(|r| (r.value(), p.entry(*r).expect("queued").lease_until))
        .collect();
    format!("{:?} {:?}", p.guard(), rows)
}

proptest! {
    /// Cell-wise LWW: applying stamped mutations in any order converges.
    #[test]
    fn apply_is_order_independent(
        muts in proptest::collection::vec(arb_mutation(), 1..10),
        seed in 0u64..1000,
    ) {
        // Stamp each mutation uniquely (stamps come from distinct LWT
        // ballots / grant instants in the real system).
        let stamped: Vec<(LockMutation, WriteStamp)> = muts
            .into_iter()
            .enumerate()
            .map(|(i, m)| (m, WriteStamp::new(i as u64 + 1)))
            .collect();
        let mut a = LockPartition::default();
        for (m, ts) in &stamped {
            a.apply(m, *ts);
        }
        let mut shuffled = stamped.clone();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut b = LockPartition::default();
        for (m, ts) in &shuffled {
            b.apply(m, *ts);
        }
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// Reconcile of two divergent replicas is commutative and absorbs
    /// both sides' knowledge.
    #[test]
    fn reconcile_is_commutative(
        left in proptest::collection::vec(arb_mutation(), 0..8),
        right in proptest::collection::vec(arb_mutation(), 0..8),
    ) {
        let mut l = LockPartition::default();
        for (i, m) in left.iter().enumerate() {
            l.apply(m, WriteStamp::new(i as u64 * 2 + 1));
        }
        let mut r = LockPartition::default();
        for (i, m) in right.iter().enumerate() {
            r.apply(m, WriteStamp::new(i as u64 * 2 + 2));
        }
        let lr = LockPartition::reconcile(l.clone(), r.clone());
        let rl = LockPartition::reconcile(r, l);
        prop_assert_eq!(fingerprint(&lr), fingerprint(&rl));
    }

    /// In a single totally ordered history (as the LWT path guarantees),
    /// the queue head only ever moves to *larger* lock references: grants
    /// are fair and never regress.
    #[test]
    fn head_is_monotone_in_ordered_histories(ops in proptest::collection::vec(0u8..2, 1..30)) {
        let mut p = LockPartition::default();
        let mut last_head = 0u64;
        for (op, stamp) in ops.into_iter().zip(1u64..) {
            match op {
                0 => {
                    let next = LockRef::new(p.guard() + 1);
                    p.apply(
                        &LockMutation::Enqueue { lock_ref: next, token: 0, lease_until: None },
                        WriteStamp::new(stamp),
                    );
                }
                _ => {
                    if let Some((head, _)) = p.head() {
                        p.apply(&LockMutation::Dequeue { lock_ref: head }, WriteStamp::new(stamp));
                    }
                }
            }
            if let Some((head, _)) = p.head() {
                prop_assert!(head.value() >= last_head, "head regressed");
                last_head = head.value();
            }
        }
    }
}
