//! Lock-store behaviour over the simulated WAN: uniqueness and fairness of
//! lock references, peek staleness, and operation costs.

use music_lockstore::{LockRef, LockStore};
use music_quorumstore::TableConfig;
use music_simnet::prelude::*;

struct Fixture {
    sim: Sim,
    locks: LockStore,
    coords: Vec<NodeId>,
}

fn fixture() -> Fixture {
    let sim = Sim::new();
    let cfg = NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    };
    let net = Network::new(sim.clone(), LatencyProfile::one_us(), cfg, 11);
    let nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let coords: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let locks = LockStore::new(net, nodes, 3, TableConfig::default());
    Fixture { sim, locks, coords }
}

#[test]
fn references_are_unique_increasing_and_dense_per_key() {
    let f = fixture();
    let (locks, me) = (f.locks.clone(), f.coords[0]);
    f.sim.block_on(async move {
        let mut prev = LockRef::NONE;
        for i in 1..=5u64 {
            let r = locks.generate_and_enqueue(me, "k").await.unwrap();
            assert!(r > prev);
            assert_eq!(r.value(), i, "failure-free refs are dense");
            prev = r;
        }
        // Independent key has its own counter.
        let other = locks.generate_and_enqueue(me, "other").await.unwrap();
        assert_eq!(other, LockRef::new(1));
    });
}

#[test]
fn concurrent_enqueues_from_all_sites_stay_unique() {
    let f = fixture();
    let sim = f.sim.clone();
    let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    for i in 0..9 {
        let locks = f.locks.clone();
        let coord = f.coords[i % 3];
        let results = std::rc::Rc::clone(&results);
        sim.spawn(async move {
            loop {
                match locks.generate_and_enqueue(coord, "contested").await {
                    Ok(r) => {
                        results.borrow_mut().push(r);
                        break;
                    }
                    Err(_) => continue, // client retries per §III-A
                }
            }
        });
    }
    sim.run();
    let mut refs = results.borrow().clone();
    assert_eq!(refs.len(), 9);
    refs.sort_unstable();
    refs.dedup();
    assert_eq!(refs.len(), 9, "lock references must be unique");
}

#[test]
fn peek_returns_queue_head_in_fifo_order() {
    let f = fixture();
    let (locks, me) = (f.locks.clone(), f.coords[0]);
    f.sim.block_on(async move {
        let r1 = locks.generate_and_enqueue(me, "k").await.unwrap();
        let r2 = locks.generate_and_enqueue(me, "k").await.unwrap();
        let (head, _) = locks.peek_local(me, "k").await.unwrap().unwrap();
        assert_eq!(head, r1);
        locks.dequeue(me, "k", r1).await.unwrap();
        let (head, _) = locks.peek_local(me, "k").await.unwrap().unwrap();
        assert_eq!(head, r2);
        locks.dequeue(me, "k", r2).await.unwrap();
        assert!(locks.peek_local(me, "k").await.unwrap().is_none());
    });
}

#[test]
fn losing_worker_can_evict_its_own_reference() {
    let f = fixture();
    let (locks, me) = (f.locks.clone(), f.coords[0]);
    f.sim.block_on(async move {
        let r1 = locks.generate_and_enqueue(me, "job").await.unwrap();
        let r2 = locks.generate_and_enqueue(me, "job").await.unwrap();
        // Worker holding r2 gives up (removeLockReference, §VII-a).
        locks.dequeue(me, "job", r2).await.unwrap();
        assert_eq!(locks.queue_local(me, "job").await.unwrap(), vec![r1]);
        // Dequeue of an absent ref is a successful no-op.
        locks.dequeue(me, "job", r2).await.unwrap();
    });
}

#[test]
fn remote_peek_is_eventually_consistent() {
    let f = fixture();
    let locks = f.locks.clone();
    let (ohio, frankfurt) = (f.coords[0], f.coords[2]);
    let locks2 = f.locks.clone();
    let sim = f.sim.clone();
    f.sim.block_on(async move {
        let r = locks.generate_and_enqueue(ohio, "k").await.unwrap();
        // The LWT committed at a quorum (Ohio + N.Cal). The Oregon replica
        // may not have the row yet; its local peek can be stale.
        let early = locks.peek_local(frankfurt, "k").await.unwrap();
        assert!(early.is_none() || early.unwrap().0 == r);
    });
    // After the background commit propagation drains, everyone agrees.
    sim.run();
    let head = sim.block_on(async move { locks2.peek_local(frankfurt, "k").await.unwrap() });
    assert_eq!(head.map(|(r, _)| r), Some(LockRef::new(1)));
}

#[test]
fn start_time_round_trips() {
    let f = fixture();
    let (locks, me, sim) = (f.locks.clone(), f.coords[0], f.sim.clone());
    f.sim.block_on(async move {
        let r = locks.generate_and_enqueue(me, "k").await.unwrap();
        let granted_at = sim.now();
        locks.set_start_time(me, "k", r, granted_at).await.unwrap();
        let (head, entry) = locks.peek_quorum(me, "k").await.unwrap().unwrap();
        assert_eq!(head, r);
        assert_eq!(entry.start_time, Some(granted_at));
    });
}

#[test]
fn scan_heads_sweeps_all_keys_in_one_call() {
    let f = fixture();
    let (locks, me) = (f.locks.clone(), f.coords[0]);
    let locks2 = f.locks.clone();
    f.sim.block_on(async move {
        for key in ["job-b", "job-a", "job-c"] {
            locks.generate_and_enqueue(me, key).await.unwrap();
        }
        // job-c's queue emptied again: must not appear in the sweep.
        let r = locks.peek_quorum(me, "job-c").await.unwrap().unwrap().0;
        locks.dequeue(me, "job-c", r).await.unwrap();
    });
    f.sim.run();
    let heads = f
        .sim
        .block_on(async move { locks2.scan_heads(f.coords[0]).await.unwrap() });
    let keys: Vec<&str> = heads.iter().map(|(k, _, _)| k.as_str()).collect();
    assert_eq!(keys, vec!["job-a", "job-b"]);
    for (_, r, _) in &heads {
        assert_eq!(*r, LockRef::new(1));
    }
}

#[test]
fn enqueue_costs_four_rtts_and_peek_is_local() {
    let f = fixture();
    let (locks, me, sim) = (f.locks.clone(), f.coords[0], f.sim.clone());
    let (enqueue, peek) = f.sim.block_on(async move {
        let t0 = sim.now();
        locks.generate_and_enqueue(me, "k").await.unwrap();
        let enqueue = sim.now() - t0;
        let t0 = sim.now();
        locks.peek_local(me, "k").await.unwrap();
        let peek = sim.now() - t0;
        (enqueue, peek)
    });
    // LWT = 4 × quorum RTT (Ohio–N.Cal 53.79ms) ≈ the paper's 219-230ms
    // for createLockRef on the 1Us profile (Fig. 5(b)).
    assert_eq!(enqueue.as_micros(), 4 * 53_790);
    // Peek = intra-site round trip ≈ the paper's ~0.67ms local peek.
    assert_eq!(peek.as_micros(), 200);
}
