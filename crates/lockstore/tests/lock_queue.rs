//! Lock-store behaviour over the simulated WAN: uniqueness and fairness of
//! lock references, peek staleness, and operation costs.

use music_lockstore::{LockRef, LockStore};
use music_quorumstore::TableConfig;
use music_simnet::prelude::*;

struct Fixture {
    sim: Sim,
    locks: LockStore,
    coords: Vec<NodeId>,
}

fn fixture() -> Fixture {
    let sim = Sim::new();
    let cfg = NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    };
    let net = Network::new(sim.clone(), LatencyProfile::one_us(), cfg, 11);
    let nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let coords: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let locks = LockStore::new(net, nodes, 3, TableConfig::default());
    Fixture { sim, locks, coords }
}

#[test]
fn references_are_unique_increasing_and_dense_per_key() {
    let f = fixture();
    let (locks, me) = (f.locks.clone(), f.coords[0]);
    f.sim.block_on(async move {
        let mut prev = LockRef::NONE;
        for i in 1..=5u64 {
            let r = locks.generate_and_enqueue(me, "k").await.unwrap();
            assert!(r > prev);
            assert_eq!(r.value(), i, "failure-free refs are dense");
            prev = r;
        }
        // Independent key has its own counter.
        let other = locks.generate_and_enqueue(me, "other").await.unwrap();
        assert_eq!(other, LockRef::new(1));
    });
}

#[test]
fn concurrent_enqueues_from_all_sites_stay_unique() {
    let f = fixture();
    let sim = f.sim.clone();
    let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    for i in 0..9 {
        let locks = f.locks.clone();
        let coord = f.coords[i % 3];
        let results = std::rc::Rc::clone(&results);
        sim.spawn(async move {
            loop {
                match locks.generate_and_enqueue(coord, "contested").await {
                    Ok(r) => {
                        results.borrow_mut().push(r);
                        break;
                    }
                    Err(_) => continue, // client retries per §III-A
                }
            }
        });
    }
    sim.run();
    let mut refs = results.borrow().clone();
    assert_eq!(refs.len(), 9);
    refs.sort_unstable();
    refs.dedup();
    assert_eq!(refs.len(), 9, "lock references must be unique");
}

#[test]
fn peek_returns_queue_head_in_fifo_order() {
    let f = fixture();
    let (locks, me) = (f.locks.clone(), f.coords[0]);
    f.sim.block_on(async move {
        let r1 = locks.generate_and_enqueue(me, "k").await.unwrap();
        let r2 = locks.generate_and_enqueue(me, "k").await.unwrap();
        let (head, _) = locks.peek_local(me, "k").await.unwrap().unwrap();
        assert_eq!(head, r1);
        locks.dequeue(me, "k", r1).await.unwrap();
        let (head, _) = locks.peek_local(me, "k").await.unwrap().unwrap();
        assert_eq!(head, r2);
        locks.dequeue(me, "k", r2).await.unwrap();
        assert!(locks.peek_local(me, "k").await.unwrap().is_none());
    });
}

#[test]
fn losing_worker_can_evict_its_own_reference() {
    let f = fixture();
    let (locks, me) = (f.locks.clone(), f.coords[0]);
    f.sim.block_on(async move {
        let r1 = locks.generate_and_enqueue(me, "job").await.unwrap();
        let r2 = locks.generate_and_enqueue(me, "job").await.unwrap();
        // Worker holding r2 gives up (removeLockReference, §VII-a).
        locks.dequeue(me, "job", r2).await.unwrap();
        assert_eq!(locks.queue_local(me, "job").await.unwrap(), vec![r1]);
        // Dequeue of an absent ref is a successful no-op.
        locks.dequeue(me, "job", r2).await.unwrap();
    });
}

#[test]
fn remote_peek_is_eventually_consistent() {
    let f = fixture();
    let locks = f.locks.clone();
    let (ohio, frankfurt) = (f.coords[0], f.coords[2]);
    let locks2 = f.locks.clone();
    let sim = f.sim.clone();
    f.sim.block_on(async move {
        let r = locks.generate_and_enqueue(ohio, "k").await.unwrap();
        // The LWT committed at a quorum (Ohio + N.Cal). The Oregon replica
        // may not have the row yet; its local peek can be stale.
        let early = locks.peek_local(frankfurt, "k").await.unwrap();
        assert!(early.is_none() || early.unwrap().0 == r);
    });
    // After the background commit propagation drains, everyone agrees.
    sim.run();
    let head = sim.block_on(async move { locks2.peek_local(frankfurt, "k").await.unwrap() });
    assert_eq!(head.map(|(r, _)| r), Some(LockRef::new(1)));
}

#[test]
fn start_time_round_trips() {
    let f = fixture();
    let (locks, me, sim) = (f.locks.clone(), f.coords[0], f.sim.clone());
    f.sim.block_on(async move {
        let r = locks.generate_and_enqueue(me, "k").await.unwrap();
        let granted_at = sim.now();
        locks.set_start_time(me, "k", r, granted_at).await.unwrap();
        let (head, entry) = locks.peek_quorum(me, "k").await.unwrap().unwrap();
        assert_eq!(head, r);
        assert_eq!(entry.start_time, Some(granted_at));
    });
}

#[test]
fn scan_heads_sweeps_all_keys_in_one_call() {
    let f = fixture();
    let (locks, me) = (f.locks.clone(), f.coords[0]);
    let locks2 = f.locks.clone();
    f.sim.block_on(async move {
        for key in ["job-b", "job-a", "job-c"] {
            locks.generate_and_enqueue(me, key).await.unwrap();
        }
        // job-c's queue emptied again: must not appear in the sweep.
        let r = locks.peek_quorum(me, "job-c").await.unwrap().unwrap().0;
        locks.dequeue(me, "job-c", r).await.unwrap();
    });
    f.sim.run();
    let heads = f
        .sim
        .block_on(async move { locks2.scan_heads(f.coords[0]).await.unwrap() });
    let keys: Vec<&str> = heads.iter().map(|(k, _, _)| k.as_str()).collect();
    assert_eq!(keys, vec!["job-a", "job-b"]);
    for (_, r, _) in &heads {
        assert_eq!(*r, LockRef::new(1));
    }
}

#[test]
fn enqueue_costs_four_rtts_and_peek_is_local() {
    let f = fixture();
    let (locks, me, sim) = (f.locks.clone(), f.coords[0], f.sim.clone());
    let (enqueue, peek) = f.sim.block_on(async move {
        let t0 = sim.now();
        locks.generate_and_enqueue(me, "k").await.unwrap();
        let enqueue = sim.now() - t0;
        let t0 = sim.now();
        locks.peek_local(me, "k").await.unwrap();
        let peek = sim.now() - t0;
        (enqueue, peek)
    });
    // LWT = 4 × quorum RTT (Ohio–N.Cal 53.79ms) ≈ the paper's 219-230ms
    // for createLockRef on the 1Us profile (Fig. 5(b)).
    assert_eq!(enqueue.as_micros(), 4 * 53_790);
    // Peek = intra-site round trip ≈ the paper's ~0.67ms local peek.
    assert_eq!(peek.as_micros(), 200);
}

#[test]
fn interleaved_enqueue_dequeue_from_three_sites_stays_monotone() {
    // Three workers (one per site) hammer one key: enqueue, poll the local
    // replica until at the head, dequeue, repeat. Every worker's observed
    // head sequence must be non-decreasing (a queue never goes backwards
    // at any single replica), minted references globally unique, and the
    // whole dance must drain (no deadlock, no lost dequeue).
    let f = fixture();
    let sim = f.sim.clone();
    let minted = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let drained = std::rc::Rc::new(std::cell::Cell::new(0u32));
    for w in 0..3usize {
        let locks = f.locks.clone();
        let coord = f.coords[w];
        let minted = std::rc::Rc::clone(&minted);
        let drained = std::rc::Rc::clone(&drained);
        let sim2 = sim.clone();
        sim.spawn(async move {
            let mut last_head = LockRef::NONE;
            for _ in 0..3 {
                let r = loop {
                    match locks.generate_and_enqueue(coord, "hot").await {
                        Ok(r) => break r,
                        Err(_) => continue, // ballot race: client retries
                    }
                };
                minted.borrow_mut().push(r);
                loop {
                    let Ok(Some((head, _))) = locks.peek_local(coord, "hot").await else {
                        sim2.sleep(SimDuration::from_millis(5)).await;
                        continue;
                    };
                    assert!(
                        head >= last_head,
                        "head went backwards at one replica: {last_head} -> {head}"
                    );
                    last_head = head;
                    if head == r {
                        break;
                    }
                    assert!(head < r, "our un-dequeued ref was passed over");
                    sim2.sleep(SimDuration::from_millis(5)).await;
                }
                while locks.dequeue(coord, "hot", r).await.is_err() {
                    sim2.sleep(SimDuration::from_millis(5)).await;
                }
                drained.set(drained.get() + 1);
            }
        });
    }
    sim.run();
    assert_eq!(drained.get(), 9, "every section entered and exited");
    let mut refs = minted.borrow().clone();
    refs.sort_unstable();
    refs.dedup();
    assert_eq!(refs.len(), 9, "lock references must be unique");
}

#[test]
fn lease_rows_keep_the_queue_monotone_under_contention() {
    use music_lockstore::EnqueueOutcome;
    let f = fixture();
    let (locks, sim) = (f.locks.clone(), f.sim.clone());
    let coords = f.coords.clone();
    f.sim.block_on(async move {
        // The owner runs a clean section and retains a lease: the release
        // LWT tombstones its ref and pre-mints the successor as the head.
        let r1 = locks.generate_and_enqueue(coords[0], "hot").await.unwrap();
        let until = sim.now() + SimDuration::from_secs(60);
        let (leased, granted_until) = locks
            .release_with_lease(coords[0], "hot", r1, until)
            .await
            .unwrap()
            .expect("nothing queued: lease retained");
        assert_eq!(leased, LockRef::new(r1.value() + 1), "successor pre-minted");
        assert_eq!(granted_until, until);

        // Lease-oblivious enqueues from the other sites queue up *behind*
        // the standing lease; references stay strictly increasing.
        let r3 = locks.generate_and_enqueue(coords[1], "hot").await.unwrap();
        let r4 = locks.generate_and_enqueue(coords[2], "hot").await.unwrap();
        assert!(leased < r3 && r3 < r4, "minted behind the leased head");
        let (head, entry) = locks
            .peek_quorum(coords[1], "hot")
            .await
            .unwrap()
            .expect("head");
        assert_eq!(head, leased, "the leased row IS the queue head");
        assert!(entry.lease_until.is_some());

        // A lease-aware enqueue must decline while the lease stands
        // unclaimed (the caller still has to force resynchronization)...
        match locks
            .generate_and_enqueue_guarded(coords[1], "hot", None)
            .await
            .unwrap()
        {
            EnqueueOutcome::LeaseBlocked(b) => assert_eq!(b, leased),
            EnqueueOutcome::Minted(r) => panic!("enqueued {r} over a standing lease"),
        }
        // ...and break it atomically once authorized: the leased row goes,
        // the breaker's fresh reference lands in the same LWT.
        let broke = match locks
            .generate_and_enqueue_guarded(coords[1], "hot", Some(leased))
            .await
            .unwrap()
        {
            EnqueueOutcome::Minted(r) => r,
            EnqueueOutcome::LeaseBlocked(b) => panic!("authorized break declined on {b}"),
        };
        assert!(broke > r4, "the breaker queues at the tail");

        // The queue drains in FIFO order with the lease row gone.
        let mut seen = Vec::new();
        for expect in [r3, r4, broke] {
            let (head, entry) = locks
                .peek_quorum(coords[2], "hot")
                .await
                .unwrap()
                .expect("head");
            assert_eq!(head, expect);
            assert!(entry.lease_until.is_none(), "no lease row after the break");
            seen.push(head);
            locks.dequeue(coords[2], "hot", head).await.unwrap();
        }
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "heads monotone");
        assert!(
            locks.peek_quorum(coords[0], "hot").await.unwrap().is_none(),
            "queue drained"
        );
    });
}
