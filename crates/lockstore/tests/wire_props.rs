//! Property tests on the lock table's wire codec. The interesting invariant
//! is *private-stamp fidelity*: a [`LockPartition`] carries per-cell LWW
//! stamps that no public accessor exposes, yet replica convergence and
//! read-repair divergence detection both compare full cell state — so the
//! codec must preserve them bit-for-bit, not just the observable queue.

use music_lockstore::{LockMutation, LockPartition, LockRef};
use music_quorumstore::{Partition, WriteStamp};
use music_runtime::Wire;
use music_simnet::time::SimTime;
use proptest::prelude::*;

fn arb_mutation() -> impl Strategy<Value = LockMutation> {
    prop_oneof![
        (1u64..8, 0u64..=u64::MAX, 0u64..1000).prop_map(|(r, token, lease)| {
            LockMutation::Enqueue {
                lock_ref: LockRef::new(r),
                token,
                lease_until: (lease > 0).then(|| SimTime::from_micros(lease)),
            }
        }),
        (1u64..8).prop_map(|r| LockMutation::Dequeue {
            lock_ref: LockRef::new(r)
        }),
        (1u64..8, 1u64..8, 0u64..=u64::MAX, 1u64..1000).prop_map(|(a, b, token, u)| {
            LockMutation::ReleaseWithLease {
                released: LockRef::new(a),
                next_ref: LockRef::new(b),
                token,
                until: SimTime::from_micros(u),
            }
        }),
        (1u64..8, 1u64..8, 0u64..=u64::MAX).prop_map(|(a, b, token)| LockMutation::BreakEnqueue {
            broken: LockRef::new(a),
            lock_ref: LockRef::new(b),
            token,
        }),
        (1u64..8, 0u64..1000).prop_map(|(r, t)| LockMutation::SetStartTime {
            lock_ref: LockRef::new(r),
            at: SimTime::from_micros(t),
        }),
        (0u64..=u64::MAX).prop_map(|to| LockMutation::RaiseGuard { to }),
    ]
}

/// A partition built from an arbitrary stamped history — entries end up
/// with distinct, non-trivial presence and start-time stamps.
fn build(muts: &[LockMutation]) -> LockPartition {
    let mut p = LockPartition::default();
    for (i, m) in muts.iter().enumerate() {
        // Spread the stamps out so "stamp - 1" below is never a collision.
        p.apply(m, WriteStamp::new((i as u64 + 1) * 10));
    }
    p
}

proptest! {
    /// `LockRef` and every `LockMutation` variant round-trip exactly.
    #[test]
    fn refs_and_mutations_roundtrip(r in 0u64..=u64::MAX, m in arb_mutation()) {
        let lr = LockRef::new(r);
        prop_assert_eq!(LockRef::from_slice(&lr.to_vec()).unwrap(), lr);
        prop_assert_eq!(LockMutation::from_slice(&m.to_vec()).unwrap(), m);
    }

    /// A partition round-trips to an *equal* partition — `PartialEq` on
    /// `LockPartition` compares the private per-cell stamps, so this is
    /// the bit-for-bit fidelity check.
    #[test]
    fn partitions_roundtrip_with_private_stamps(
        muts in proptest::collection::vec(arb_mutation(), 0..12),
    ) {
        let p = build(&muts);
        let back = LockPartition::from_slice(&p.to_vec()).unwrap();
        prop_assert_eq!(&back, &p);
        // Behavioural fidelity: a stale write (below every cell stamp) is
        // ignored identically by the original and the decoded copy, and a
        // fresh write lands identically — the decoded replica reconciles
        // exactly like the one that never crossed the wire.
        let stale = LockMutation::Enqueue {
            lock_ref: LockRef::new(1),
            token: 99,
            lease_until: None,
        };
        let mut a = p.clone();
        let mut b = back;
        a.apply(&stale, WriteStamp::new(1));
        b.apply(&stale, WriteStamp::new(1));
        prop_assert_eq!(&a, &b);
        let fresh = WriteStamp::new(muts.len() as u64 * 10 + 1);
        a.apply(&stale, fresh);
        b.apply(&stale, fresh);
        prop_assert_eq!(a, b);
    }

    /// Reconciling a replica with its own wire image is the identity, and
    /// reconciling two divergent replicas gives the same answer whether or
    /// not one side went through the codec first.
    #[test]
    fn reconcile_commutes_with_the_codec(
        left in proptest::collection::vec(arb_mutation(), 0..8),
        right in proptest::collection::vec(arb_mutation(), 0..8),
    ) {
        let l = build(&left);
        let mut r = LockPartition::default();
        for (i, m) in right.iter().enumerate() {
            r.apply(m, WriteStamp::new((i as u64 + 1) * 10 + 5));
        }
        let self_merge = LockPartition::reconcile(
            l.clone(),
            LockPartition::from_slice(&l.to_vec()).unwrap(),
        );
        prop_assert_eq!(&self_merge, &l);
        let direct = LockPartition::reconcile(l.clone(), r.clone());
        let via_wire = LockPartition::reconcile(
            LockPartition::from_slice(&l.to_vec()).unwrap(),
            LockPartition::from_slice(&r.to_vec()).unwrap(),
        );
        prop_assert_eq!(direct, via_wire);
    }

    /// Truncations and trailing bytes are rejected — a misframed lock
    /// partition must never decode to a plausible (smaller) queue.
    #[test]
    fn corrupt_framings_are_rejected(
        muts in proptest::collection::vec(arb_mutation(), 1..8),
        junk in 0u8..=255,
    ) {
        let buf = build(&muts).to_vec();
        for cut in 0..buf.len() {
            prop_assert!(
                LockPartition::from_slice(&buf[..cut]).is_err(),
                "prefix of length {cut} decoded"
            );
        }
        let mut long = buf;
        long.push(junk);
        prop_assert!(LockPartition::from_slice(&long).is_err(), "trailing byte accepted");
    }
}
