//! [`ReplicatedTable`]: a geo-replicated table of [`Partition`]s with
//! Cassandra-style coordinator operations.
//!
//! * `read_one` / `write_one` — eventual consistency (CL=ONE): reads hit
//!   the nearest replica; writes go to every replica but acknowledge after
//!   the first. This is the `CassaEV` baseline of §VIII-b.
//! * `read_quorum` / `write_quorum` — majority operations (CL=QUORUM),
//!   one WAN round trip. These implement `dsGetQuorum` / `dsPutQuorum`.
//! * `lwt` — Paxos-based compare-and-set in four phases
//!   (prepare/promise → read → propose/accept → commit), exactly the
//!   Cassandra LWT structure the paper builds its lock store on (§VI,
//!   §X-A1). An in-progress proposal discovered during prepare is completed
//!   before the caller's own update runs.
//!
//! Writes always propagate to *all* replicas; the consistency level only
//! chooses how many acknowledgments the coordinator waits for. Straggler
//! deliveries continue in the background (detached tasks), which is what
//! makes the store eventually consistent.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use music_paxos::{choose_value, Acceptor, Ballot, BallotGenerator, Chosen};
use music_simnet::combinators::{quorum, timeout};
use music_simnet::executor::JoinHandle;
use music_simnet::net::{Network, NodeId};
use music_simnet::time::SimDuration;
use music_telemetry::{EventKind, LwtPhase, Scope};

use crate::error::StoreError;
use crate::partition::{Partition, HEADER_BYTES};
use crate::ring::Placement;
use crate::stamp::WriteStamp;

/// Tunables for coordinator operations.
#[derive(Clone, Debug)]
pub struct TableConfig {
    /// How long a coordinator waits for a quorum before nacking the client.
    pub op_timeout: SimDuration,
    /// Maximum LWT ballot-race retries before reporting
    /// [`StoreError::Contention`].
    pub lwt_retries: u32,
    /// Base back-off between LWT retries (scaled by attempt and skewed per
    /// coordinator to break livelock symmetry).
    pub lwt_backoff: SimDuration,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            op_timeout: SimDuration::from_secs(4),
            lwt_retries: 16,
            lwt_backoff: SimDuration::from_millis(5),
        }
    }
}

/// A Paxos proposal replicated by the LWT path: an absolute mutation plus
/// the stamp it will be applied with.
pub struct Proposal<P: Partition> {
    /// The mutation to apply on commit.
    pub mutation: P::Mutation,
    /// Stamp the mutation is applied with (last-write-wins).
    pub stamp: WriteStamp,
}

impl<P: Partition> Clone for Proposal<P> {
    fn clone(&self) -> Self {
        Proposal {
            mutation: self.mutation.clone(),
            stamp: self.stamp,
        }
    }
}

impl<P: Partition> fmt::Debug for Proposal<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Proposal")
            .field("mutation", &self.mutation)
            .field("stamp", &self.stamp)
            .finish()
    }
}

/// Result of an [`ReplicatedTable::lwt`] call.
pub struct LwtOutcome<P: Partition> {
    /// Whether the caller's mutation was applied (`false` = the `decide`
    /// closure declined, i.e. the compare failed).
    pub applied: bool,
    /// The reconciled quorum snapshot the decision was made against.
    pub before: P::Snapshot,
}

impl<P: Partition> fmt::Debug for LwtOutcome<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LwtOutcome")
            .field("applied", &self.applied)
            .field("before", &self.before)
            .finish()
    }
}

/// Replica-side state of one store node: its partitions plus the per-key
/// Paxos acceptors the LWT path drives. In the simulation every replica
/// lives inside [`ReplicatedTable`]; a real deployment hosts one
/// `TableReplica` per `music-node` process and serves it over sockets via
/// [`crate::remote::serve_frame`].
pub struct TableReplica<P: Partition> {
    partitions: HashMap<String, P>,
    paxos: HashMap<String, Acceptor<Proposal<P>>>,
}

impl<P: Partition> Default for TableReplica<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Partition> TableReplica<P> {
    /// An empty replica.
    pub fn new() -> Self {
        TableReplica {
            partitions: HashMap::new(),
            paxos: HashMap::new(),
        }
    }

    /// Snapshot of `key`'s partition (creating it empty if absent).
    pub fn snapshot(&mut self, key: &str) -> P::Snapshot {
        self.partitions
            .entry(key.to_string())
            .or_default()
            .snapshot()
    }

    /// Applies a stamped mutation to `key`'s partition.
    pub fn apply(&mut self, key: &str, mutation: &P::Mutation, stamp: WriteStamp) {
        self.partitions
            .entry(key.to_string())
            .or_default()
            .apply(mutation, stamp);
    }

    /// The Paxos acceptor guarding `key`'s LWT rounds.
    pub fn acceptor(&mut self, key: &str) -> &mut Acceptor<Proposal<P>> {
        self.paxos
            .entry(key.to_string())
            .or_insert_with(Acceptor::new)
    }

    /// Sorted keys of all live partitions (the full-table scan primitive).
    pub fn live_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .partitions
            .iter()
            .filter(|(_, p)| p.exists())
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort_unstable();
        keys
    }

    /// All live partitions, sorted by key (the range-scan primitive).
    pub fn live_partitions(&self) -> Vec<(String, P)> {
        let mut rows: Vec<(String, P)> = self
            .partitions
            .iter()
            .filter(|(_, p)| p.exists())
            .map(|(k, p)| (k.clone(), p.clone()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

struct TableInner<P: Partition> {
    net: Network,
    nodes: Vec<NodeId>,
    placement: Placement,
    replicas: Vec<Rc<RefCell<TableReplica<P>>>>,
    cfg: TableConfig,
    /// Highest ballot each (coordinator, key) pair has observed.
    ballots: RefCell<HashMap<(NodeId, String), BallotGenerator>>,
}

/// A replicated table of partitions, shared by all coordinators in the
/// simulation. Clone handles freely.
pub struct ReplicatedTable<P: Partition> {
    inner: Rc<TableInner<P>>,
}

impl<P: Partition> Clone for ReplicatedTable<P> {
    fn clone(&self) -> Self {
        ReplicatedTable {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<P: Partition> fmt::Debug for ReplicatedTable<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicatedTable")
            .field("nodes", &self.inner.nodes)
            .field("rf", &self.inner.placement.rf())
            .finish()
    }
}

impl<P: Partition> ReplicatedTable<P> {
    /// Creates a table replicated across `nodes` with replication factor
    /// `rf`.
    ///
    /// For site-spread replicas, order `nodes` site-interleaved
    /// (`s0n0, s1n0, s2n0, s0n1, …`) — see [`Placement`].
    ///
    /// # Panics
    ///
    /// Panics if `rf` is zero or exceeds `nodes.len()`.
    pub fn new(net: Network, nodes: Vec<NodeId>, rf: usize, cfg: TableConfig) -> Self {
        let placement = Placement::new(nodes.len(), rf);
        let replicas = (0..nodes.len())
            .map(|_| Rc::new(RefCell::new(TableReplica::new())))
            .collect();
        ReplicatedTable {
            inner: Rc::new(TableInner {
                net,
                nodes,
                placement,
                replicas,
                cfg,
                ballots: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// The network this table communicates over.
    pub fn net(&self) -> &Network {
        &self.inner.net
    }

    /// Placement (ring) of this table.
    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    /// Node ids of all store replicas.
    pub fn nodes(&self) -> &[NodeId] {
        &self.inner.nodes
    }

    /// Replica indices and node ids holding `key`.
    fn replicas_of(&self, key: &str) -> Vec<(usize, NodeId)> {
        self.inner
            .placement
            .replicas_of(key)
            .into_iter()
            .map(|i| (i, self.inner.nodes[i]))
            .collect()
    }

    /// The replica of `key` closest to `coord` (ties: lowest index).
    fn nearest_replica(&self, coord: NodeId, key: &str) -> (usize, NodeId) {
        self.replicas_of(key)
            .into_iter()
            .min_by_key(|&(i, n)| (self.inner.net.propagation(coord, n), i))
            .expect("rf >= 1")
    }

    fn quorum_size(&self) -> usize {
        self.inner.placement.quorum()
    }

    /// Emits a telemetry event attributed to `node`, stamped with the
    /// current virtual time and the running task's trace tag. No-op unless
    /// the network's recorder is tracing.
    fn emit(&self, node: NodeId, kind: impl FnOnce() -> EventKind) {
        let rec = self.inner.net.recorder();
        if rec.is_tracing() {
            let sim = self.inner.net.sim();
            rec.record(sim.now().as_micros(), sim.trace(), node.0, kind());
        }
    }

    /// Bumps a per-node counter on the network's recorder.
    fn count(&self, node: NodeId, name: &'static str, n: u64) {
        let rec = self.inner.net.recorder();
        if rec.is_on() {
            rec.count(Scope::Node(node.0), name, n);
        }
    }

    /// Spawns one RPC per replica of `key`; `serve` runs at the replica on
    /// delivery. Each RPC uses bounded retransmission (idempotent stamped
    /// handlers), so a transient partition delays a replica's update
    /// instead of dropping it forever — the hinted-handoff behaviour the
    /// store's eventual consistency relies on.
    fn fan_out<R: 'static>(
        &self,
        coord: NodeId,
        key: &str,
        req_bytes: usize,
        serve: impl Fn(&mut TableReplica<P>) -> (R, usize) + Clone + 'static,
    ) -> Vec<JoinHandle<R>> {
        let sim = self.inner.net.sim().clone();
        self.replicas_of(key)
            .into_iter()
            .map(|(idx, node)| {
                let net = self.inner.net.clone();
                let replica = Rc::clone(&self.inner.replicas[idx]);
                let serve = serve.clone();
                sim.spawn(async move {
                    net.rpc_reliable(
                        coord,
                        node,
                        req_bytes,
                        move || serve(&mut replica.borrow_mut()),
                        10,
                        SimDuration::from_secs(2),
                    )
                    .await
                })
            })
            .collect()
    }

    /// Eventual-consistency read (CL=ONE) from the replica of `key` nearest
    /// to `coord`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the replica does not answer in time.
    pub async fn read_one(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError> {
        let (idx, node) = self.nearest_replica(coord, key);
        let net = self.inner.net.clone();
        let replica = Rc::clone(&self.inner.replicas[idx]);
        let key = key.to_string();
        let fut = net.rpc(coord, node, HEADER_BYTES + key.len(), move || {
            let snap = replica.borrow_mut().snapshot(&key);
            let bytes = P::snapshot_bytes(&snap);
            (snap, bytes)
        });
        timeout(self.inner.net.sim(), self.inner.cfg.op_timeout, fut)
            .await
            .map_err(|_| StoreError::Unavailable)
    }

    /// Eventual-consistency write (CL=ONE): ships the mutation to every
    /// replica, acknowledges after the first, and lets the rest land in the
    /// background.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if no replica acknowledges in time.
    pub async fn write_one(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> Result<(), StoreError> {
        self.write_with_cl(coord, key, mutation, stamp, 1).await
    }

    /// Quorum write (`dsPutQuorum`): acknowledged once a majority of the
    /// key's replicas applied the mutation.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if a majority does not acknowledge in
    /// time. The write may still land at some replicas — exactly the
    /// "unacknowledged put" case MUSIC's `synchFlag` machinery exists for.
    pub async fn write_quorum(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> Result<(), StoreError> {
        let need = self.quorum_size();
        self.write_with_cl(coord, key, mutation, stamp, need).await
    }

    /// Starts a quorum write without awaiting it: the returned handle
    /// resolves once a majority has acknowledged (or the operation timed
    /// out). The fan-out happens immediately; this is the primitive the
    /// pipelined `criticalPut` path and [`ReplicatedTable::write_quorum_many`]
    /// build their bounded in-flight windows on.
    pub fn write_quorum_spawned(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> JoinHandle<Result<(), StoreError>> {
        let table = self.clone();
        let key = key.to_string();
        self.inner
            .net
            .sim()
            .spawn(async move { table.write_quorum(coord, &key, mutation, stamp).await })
    }

    /// Windowed multi-put: issues the `(key, mutation, stamp)` writes in
    /// order with at most `window` quorum writes in flight, then drains the
    /// tail. All writes are *started* even after a failure (each key's
    /// mutation still propagates eventually); the first error is returned
    /// after the drain.
    ///
    /// # Errors
    ///
    /// The first [`StoreError`] any of the writes reported.
    pub async fn write_quorum_many(
        &self,
        coord: NodeId,
        items: Vec<(String, P::Mutation, WriteStamp)>,
        window: usize,
    ) -> Result<(), StoreError> {
        let window = window.max(1);
        let mut in_flight = std::collections::VecDeque::new();
        let mut first_err = None;
        for (key, mutation, stamp) in items {
            while in_flight.len() >= window {
                let handle: JoinHandle<Result<(), StoreError>> =
                    in_flight.pop_front().expect("non-empty window");
                if let Err(e) = handle.await {
                    first_err.get_or_insert(e);
                }
            }
            in_flight.push_back(self.write_quorum_spawned(coord, &key, mutation, stamp));
        }
        while let Some(handle) = in_flight.pop_front() {
            if let Err(e) = handle.await {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    async fn write_with_cl(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
        need: usize,
    ) -> Result<(), StoreError> {
        let bytes = HEADER_BYTES + key.len() + P::mutation_bytes(&mutation);
        let key_owned = key.to_string();
        let handles = self.fan_out(coord, key, bytes, move |rep| {
            rep.apply(&key_owned, &mutation, stamp);
            ((), HEADER_BYTES)
        });
        timeout(
            self.inner.net.sim(),
            self.inner.cfg.op_timeout,
            quorum(handles, need),
        )
        .await
        .map(|_| ())
        .map_err(|_| StoreError::Unavailable)?;
        self.count(coord, "quorum_writes", 1);
        self.emit(coord, || EventKind::QuorumWrite {
            key: key.to_string(),
            acks: need as u32,
        });
        Ok(())
    }

    /// Fans a snapshot read out to every replica of `key`.
    fn read_fan_out(&self, coord: NodeId, key: &str) -> Vec<JoinHandle<P::Snapshot>> {
        let key_owned = key.to_string();
        self.fan_out(coord, key, HEADER_BYTES + key.len(), move |rep| {
            let snap = rep.snapshot(&key_owned);
            let bytes = P::snapshot_bytes(&snap);
            (snap, bytes)
        })
    }

    /// Quorum read (`dsGetQuorum`): reconciles snapshots from a majority of
    /// the key's replicas and returns the newest. When the replies
    /// diverge (digest mismatch), the reconciled state is written back to
    /// every replica in the background — Cassandra-style read repair.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if a majority does not answer in time.
    pub async fn read_quorum(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError> {
        let need = self.quorum_size();
        let handles = self.read_fan_out(coord, key);
        let replies = timeout(
            self.inner.net.sim(),
            self.inner.cfg.op_timeout,
            quorum(handles, need),
        )
        .await
        .map_err(|_| StoreError::Unavailable)?;
        let snaps: Vec<P::Snapshot> = replies.into_iter().map(|(_, s)| s).collect();
        self.count(coord, "quorum_reads", 1);
        self.emit(coord, || EventKind::QuorumRead {
            key: key.to_string(),
            replies: snaps.len() as u32,
        });
        let mut it = snaps.iter().cloned();
        let first = it.next().expect("quorum >= 1");
        let newest = it.fold(first, |acc, s| P::reconcile(acc, s));
        if snaps.iter().any(|s| *s != newest) {
            // Divergence observed: repair all replicas in the background.
            self.count(coord, "read_repairs", 1);
            self.emit(coord, || EventKind::ReadRepair {
                key: key.to_string(),
            });
            for (mutation, stamp) in P::repair(&newest) {
                let bytes = HEADER_BYTES + key.len() + P::mutation_bytes(&mutation);
                let key_owned = key.to_string();
                drop(self.fan_out(coord, key, bytes, move |rep| {
                    rep.apply(&key_owned, &mutation, stamp);
                    ((), HEADER_BYTES)
                }));
            }
        }
        Ok(newest)
    }

    /// Default stamp an LWT mutation gets if the `decide` closure keeps the
    /// suggestion: derived from the ballot, so stamps of successive LWTs on
    /// a key are strictly increasing. The round owns the high bits; the
    /// proposer id must fit the low 20 bits or stamps could invert across
    /// rounds.
    fn ballot_stamp(ballot: Ballot) -> WriteStamp {
        assert!(
            u64::from(ballot.proposer) < (1 << 20),
            "LWT coordinator node id {} exceeds the stamp's proposer field",
            ballot.proposer
        );
        WriteStamp::new((ballot.round << 20) | u64::from(ballot.proposer))
    }

    /// Light-weight transaction: linearizable read-decide-write on one key
    /// in four phases (prepare, read, propose, commit — 4 WAN round trips,
    /// §X-A1).
    ///
    /// `decide` receives the reconciled quorum snapshot and a suggested
    /// stamp (ballot-derived, strictly increasing per key); it returns the
    /// mutation to apply, or `None` to abort (compare failed). It may run
    /// multiple times if the LWT must retry after ballot races.
    ///
    /// # Errors
    ///
    /// * [`StoreError::Unavailable`] — some phase could not reach a quorum.
    /// * [`StoreError::Contention`] — ballot races exhausted the retry
    ///   budget.
    pub async fn lwt(
        &self,
        coord: NodeId,
        key: &str,
        mut decide: impl FnMut(&P::Snapshot, WriteStamp) -> Option<(P::Mutation, WriteStamp)>,
    ) -> Result<LwtOutcome<P>, StoreError> {
        let sim = self.inner.net.sim().clone();
        for attempt in 0..self.inner.cfg.lwt_retries {
            if attempt > 0 {
                self.count(coord, "lwt_retries", 1);
                self.emit(coord, || EventKind::LwtRetry {
                    key: key.to_string(),
                    attempt,
                });
                // Deterministic pseudo-random exponential back-off: racing
                // proposers must desynchronize or they preempt each other
                // forever (Cassandra uses randomized back-off here too).
                let exp = 1u64 << attempt.min(6);
                let jitter = crate::ring::key_hash(&format!("{}-{}-{}", coord.0, key, attempt))
                    % (self.inner.cfg.lwt_backoff.as_micros().max(1) * exp);
                let backoff =
                    self.inner.cfg.lwt_backoff * exp / 2 + SimDuration::from_micros(jitter);
                sim.sleep(backoff).await;
            }
            let ballot = self.next_ballot(coord, key);
            let ballot_code = (ballot.round << 20) | u64::from(ballot.proposer);
            self.emit(coord, || EventKind::Lwt {
                key: key.to_string(),
                phase: LwtPhase::Prepare,
                ballot: ballot_code,
            });

            // Phase 1: prepare / promise.
            let key_owned = key.to_string();
            let handles = self.fan_out(coord, key, HEADER_BYTES + key.len(), move |rep| {
                let reply = rep.acceptor(&key_owned).prepare(ballot);
                let bytes = HEADER_BYTES
                    + reply
                        .in_progress
                        .as_ref()
                        .map_or(0, |(_, p)| P::mutation_bytes(&p.mutation));
                (reply, bytes)
            });
            let need = self.quorum_size();
            let replies = timeout(&sim, self.inner.cfg.op_timeout, quorum(handles, need))
                .await
                .map_err(|_| StoreError::Unavailable)?;
            let mut promises = Vec::new();
            let mut preempted = false;
            for (_, reply) in replies {
                self.observe_ballot(coord, key, reply.current_promise);
                if reply.promised {
                    promises.push(reply);
                } else {
                    preempted = true;
                }
            }
            if preempted || promises.len() < need {
                continue;
            }

            // Complete any in-progress proposal before our own update.
            if let Chosen::MustComplete(_, proposal) = choose_value(&promises) {
                self.emit(coord, || EventKind::Lwt {
                    key: key.to_string(),
                    phase: LwtPhase::MustComplete,
                    ballot: ballot_code,
                });
                if self
                    .accept_quorum(coord, key, ballot, proposal.clone())
                    .await?
                {
                    self.commit_quorum(coord, key, ballot, &proposal).await?;
                }
                // Either way, re-run from prepare with a fresh view.
                continue;
            }

            // Phase 2: quorum read of the current partition state.
            self.emit(coord, || EventKind::Lwt {
                key: key.to_string(),
                phase: LwtPhase::Read,
                ballot: ballot_code,
            });
            let before = self.read_quorum(coord, key).await?;

            // Phase 3: decide and propose.
            let Some((mutation, stamp)) = decide(&before, Self::ballot_stamp(ballot)) else {
                self.emit(coord, || EventKind::LwtResult {
                    key: key.to_string(),
                    applied: false,
                    attempts: attempt + 1,
                });
                return Ok(LwtOutcome {
                    applied: false,
                    before,
                });
            };
            self.emit(coord, || EventKind::Lwt {
                key: key.to_string(),
                phase: LwtPhase::Propose,
                ballot: ballot_code,
            });
            let proposal = Proposal { mutation, stamp };
            if !self
                .accept_quorum(coord, key, ballot, proposal.clone())
                .await?
            {
                continue;
            }

            // Phase 4: commit (replicas apply the mutation).
            self.emit(coord, || EventKind::Lwt {
                key: key.to_string(),
                phase: LwtPhase::Commit,
                ballot: ballot_code,
            });
            self.commit_quorum(coord, key, ballot, &proposal).await?;
            self.emit(coord, || EventKind::LwtResult {
                key: key.to_string(),
                applied: true,
                attempts: attempt + 1,
            });
            return Ok(LwtOutcome {
                applied: true,
                before,
            });
        }
        self.count(coord, "lwt_contention", 1);
        Err(StoreError::Contention)
    }

    async fn accept_quorum(
        &self,
        coord: NodeId,
        key: &str,
        ballot: Ballot,
        proposal: Proposal<P>,
    ) -> Result<bool, StoreError> {
        let bytes = HEADER_BYTES + key.len() + P::mutation_bytes(&proposal.mutation);
        let key_owned = key.to_string();
        let handles = self.fan_out(coord, key, bytes, move |rep| {
            let reply = rep.acceptor(&key_owned).accept(ballot, proposal.clone());
            (reply, HEADER_BYTES)
        });
        let need = self.quorum_size();
        let replies = timeout(
            self.inner.net.sim(),
            self.inner.cfg.op_timeout,
            quorum(handles, need),
        )
        .await
        .map_err(|_| StoreError::Unavailable)?;
        let mut ok = true;
        for (_, reply) in &replies {
            self.observe_ballot(coord, key, reply.current_promise);
            ok &= reply.accepted;
        }
        Ok(ok)
    }

    /// Commit carries the proposal itself (as Cassandra's commit writes
    /// the mutation into the table): a replica that missed the accept
    /// still applies the committed value, so even CL=ONE reads converge.
    async fn commit_quorum(
        &self,
        coord: NodeId,
        key: &str,
        ballot: Ballot,
        proposal: &Proposal<P>,
    ) -> Result<(), StoreError> {
        let key_owned = key.to_string();
        let proposal = proposal.clone();
        let bytes = HEADER_BYTES + key.len() + P::mutation_bytes(&proposal.mutation);
        let handles = self.fan_out(coord, key, bytes, move |rep| {
            // Clear the Paxos round (no-op if this replica never accepted).
            let _ = rep.acceptor(&key_owned).commit(ballot);
            rep.apply(&key_owned, &proposal.mutation, proposal.stamp);
            ((), HEADER_BYTES)
        });
        let need = self.quorum_size();
        timeout(
            self.inner.net.sim(),
            self.inner.cfg.op_timeout,
            quorum(handles, need),
        )
        .await
        .map(|_| ())
        .map_err(|_| StoreError::Unavailable)
    }

    fn next_ballot(&self, coord: NodeId, key: &str) -> Ballot {
        let mut ballots = self.inner.ballots.borrow_mut();
        let gen = ballots
            .entry((coord, key.to_string()))
            .or_insert_with(|| BallotGenerator::new(coord.0));
        gen.next()
    }

    fn observe_ballot(&self, coord: NodeId, key: &str, ballot: Ballot) {
        let mut ballots = self.inner.ballots.borrow_mut();
        let gen = ballots
            .entry((coord, key.to_string()))
            .or_insert_with(|| BallotGenerator::new(coord.0));
        gen.observe(ballot);
    }

    /// Scans the replica nearest to `coord` for all live keys, in sorted
    /// order (Cassandra full-table scan at CL=ONE; the paper's
    /// `getAllKeys` helper, §VII-a). The view may be stale, which the
    /// paper's job-scheduler pattern explicitly tolerates.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the replica does not answer in time.
    pub async fn list_keys_local(&self, coord: NodeId) -> Result<Vec<String>, StoreError> {
        // Nearest store node overall (scans are not per-key routed).
        let (idx, node) = (0..self.inner.nodes.len())
            .map(|i| (i, self.inner.nodes[i]))
            .min_by_key(|&(i, n)| (self.inner.net.propagation(coord, n), i))
            .expect("at least one node");
        let net = self.inner.net.clone();
        let replica = Rc::clone(&self.inner.replicas[idx]);
        let fut = net.rpc(coord, node, HEADER_BYTES, move || {
            let rep = replica.borrow_mut();
            let mut keys: Vec<String> = rep
                .partitions
                .iter()
                .filter(|(_, p)| p.exists())
                .map(|(k, _)| k.clone())
                .collect();
            keys.sort_unstable();
            let bytes = HEADER_BYTES + keys.iter().map(|k| k.len() + 8).sum::<usize>();
            (keys, bytes)
        });
        timeout(self.inner.net.sim(), self.inner.cfg.op_timeout, fut)
            .await
            .map_err(|_| StoreError::Unavailable)
    }

    /// Range scan at the replica nearest to `coord`: applies `extract` to
    /// every live partition and returns the `(key, value)` pairs in one
    /// round trip (Cassandra range query at CL=ONE). Used by monitoring
    /// sweeps (the failure detector) that would otherwise issue one RPC
    /// per key.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the replica does not answer in time.
    pub async fn scan_local<R: 'static>(
        &self,
        coord: NodeId,
        extract: impl Fn(&P) -> R + 'static,
    ) -> Result<Vec<(String, R)>, StoreError> {
        let (idx, node) = (0..self.inner.nodes.len())
            .map(|i| (i, self.inner.nodes[i]))
            .min_by_key(|&(i, n)| (self.inner.net.propagation(coord, n), i))
            .expect("at least one node");
        let net = self.inner.net.clone();
        let replica = Rc::clone(&self.inner.replicas[idx]);
        let fut = net.rpc(coord, node, HEADER_BYTES, move || {
            let rep = replica.borrow();
            let mut rows: Vec<(String, R)> = rep
                .partitions
                .iter()
                .filter(|(_, p)| p.exists())
                .map(|(k, p)| (k.clone(), extract(p)))
                .collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            let bytes = HEADER_BYTES + rows.len() * 32;
            (rows, bytes)
        });
        timeout(self.inner.net.sim(), self.inner.cfg.op_timeout, fut)
            .await
            .map_err(|_| StoreError::Unavailable)
    }

    /// Live keys at one specific replica (one round trip) — used by
    /// anti-entropy to build the union key set.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the replica does not answer in time.
    pub async fn list_keys_at(
        &self,
        coord: NodeId,
        replica_idx: usize,
    ) -> Result<Vec<String>, StoreError> {
        let node = self.inner.nodes[replica_idx];
        let net = self.inner.net.clone();
        let replica = Rc::clone(&self.inner.replicas[replica_idx]);
        let fut = net.rpc(coord, node, HEADER_BYTES, move || {
            let rep = replica.borrow();
            let mut keys: Vec<String> = rep
                .partitions
                .iter()
                .filter(|(_, p)| p.exists())
                .map(|(k, _)| k.clone())
                .collect();
            keys.sort_unstable();
            let bytes = HEADER_BYTES + keys.iter().map(|k| k.len() + 8).sum::<usize>();
            (keys, bytes)
        });
        timeout(self.inner.net.sim(), self.inner.cfg.op_timeout, fut)
            .await
            .map_err(|_| StoreError::Unavailable)
    }

    /// Anti-entropy repair of one key: reads every reachable replica,
    /// reconciles, and writes the newest state back to all replicas
    /// (`nodetool repair` for a single partition). Returns whether any
    /// divergence was observed.
    ///
    /// Unlike the quorum path, this *tries* to hear from every replica
    /// (falling back to a majority when some are down), so it heals
    /// replicas that quorum traffic never touches.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if not even a majority answers.
    pub async fn repair_key(&self, coord: NodeId, key: &str) -> Result<bool, StoreError> {
        let sim = self.inner.net.sim().clone();
        let rf = self.inner.placement.rf();
        let handles = self.read_fan_out(coord, key);
        // Prefer all rf replies; settle for a majority if stragglers hang.
        let replies = match timeout(&sim, self.inner.cfg.op_timeout, quorum(handles, rf)).await {
            Ok(r) => r,
            Err(_) => {
                // Down replicas: redo with a majority requirement.
                let handles = self.read_fan_out(coord, key);
                timeout(
                    &sim,
                    self.inner.cfg.op_timeout,
                    quorum(handles, self.quorum_size()),
                )
                .await
                .map_err(|_| StoreError::Unavailable)?
            }
        };
        let snaps: Vec<P::Snapshot> = replies.into_iter().map(|(_, s)| s).collect();
        let mut it = snaps.iter().cloned();
        let first = it.next().expect("at least a majority");
        let newest = it.fold(first, |acc, s| P::reconcile(acc, s));
        let diverged = snaps.iter().any(|s| *s != newest);
        if diverged {
            for (mutation, stamp) in P::repair(&newest) {
                let bytes = HEADER_BYTES + key.len() + P::mutation_bytes(&mutation);
                let key_owned = key.to_string();
                let handles = self.fan_out(coord, key, bytes, move |rep| {
                    rep.apply(&key_owned, &mutation, stamp);
                    ((), HEADER_BYTES)
                });
                // Wait for a majority of each repair write; stragglers
                // continue in the background.
                let _ = timeout(
                    &sim,
                    self.inner.cfg.op_timeout,
                    quorum(handles, self.quorum_size()),
                )
                .await;
            }
        }
        Ok(diverged)
    }

    /// Anti-entropy sweep over the whole table: repairs every key present
    /// at any reachable replica. Returns the number of keys that had
    /// diverged.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if no replica can enumerate keys.
    pub async fn repair_all(&self, coord: NodeId) -> Result<u64, StoreError> {
        let mut keys = std::collections::BTreeSet::new();
        let mut any_listed = false;
        for idx in 0..self.inner.nodes.len() {
            if let Ok(ks) = self.list_keys_at(coord, idx).await {
                any_listed = true;
                keys.extend(ks);
            }
        }
        if !any_listed {
            return Err(StoreError::Unavailable);
        }
        let mut repaired = 0;
        for key in keys {
            if self.repair_key(coord, &key).await? {
                repaired += 1;
            }
        }
        Ok(repaired)
    }

    /// Direct, network-free view of one replica's partition state — test
    /// and experiment instrumentation only.
    pub fn peek_replica(&self, replica_idx: usize, key: &str) -> P::Snapshot {
        self.inner.replicas[replica_idx].borrow_mut().snapshot(key)
    }

    /// Whether every replica of `key` currently holds an identical
    /// snapshot (by `Debug` rendering) — convergence check for tests.
    pub fn converged(&self, key: &str) -> bool {
        let snaps: Vec<String> = self
            .replicas_of(key)
            .into_iter()
            .map(|(i, _)| format!("{:?}", self.peek_replica(i, key)))
            .collect();
        snaps.windows(2).all(|w| w[0] == w[1])
    }
}
