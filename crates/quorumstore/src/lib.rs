//! # music-quorumstore
//!
//! A Cassandra-like geo-replicated store, built for the MUSIC reproduction:
//! last-write-wins [`Partition`]s replicated across simulated WAN sites,
//! with three coordinator paths:
//!
//! | Operation | Consistency | Cost | Paper role |
//! |---|---|---|---|
//! | [`ReplicatedTable::read_one`] / [`ReplicatedTable::write_one`] | eventual (CL=ONE) | local | `get`/`put`, `CassaEV` baseline |
//! | [`ReplicatedTable::read_quorum`] / [`ReplicatedTable::write_quorum`] | majority | 1 WAN RTT | `dsGetQuorum`/`dsPutQuorum` |
//! | [`ReplicatedTable::lwt`] | linearizable CAS | 4 WAN RTTs | lock store ops, `MSCP` baseline |
//!
//! The LWT path drives the pure Paxos state machines of `music-paxos` over
//! the simulated network with the same four-phase structure as Cassandra's
//! light-weight transactions.
//!
//! Protocol layers should program against [`TableApi`], the runtime-generic
//! entry point: [`ReplicatedTable`] implements it over the deterministic
//! simulator, and [`RemoteTable`] implements it over a
//! [`Transport`](music_runtime::Transport) (real sockets via `music-node`,
//! or the simulated transport in tests).
//!
//! ## Quickstart (simulated runtime)
//!
//! ```
//! use music_quorumstore::{DataRow, Put, ReplicatedTable, TableConfig, WriteStamp};
//! use music_simnet::prelude::*;
//! use bytes::Bytes;
//!
//! let sim = Sim::new();
//! let net = Network::new(sim.clone(), LatencyProfile::one_us(), NetConfig::default(), 1);
//! let nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
//! let client = net.add_node(SiteId(0));
//! let table: ReplicatedTable<DataRow> =
//!     ReplicatedTable::new(net, nodes, 3, TableConfig::default());
//!
//! sim.block_on({
//!     let table = table.clone();
//!     async move {
//!         table
//!             .write_quorum(client, "k", Put::value(Bytes::from_static(b"v")), WriteStamp::new(1))
//!             .await
//!             .unwrap();
//!         let snap = table.read_quorum(client, "k").await.unwrap();
//!         assert_eq!(snap.value.unwrap(), Bytes::from_static(b"v"));
//!     }
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod error;
pub mod partition;
pub mod remote;
pub mod ring;
pub mod stamp;
pub mod table;

pub use api::TableApi;
pub use error::StoreError;
pub use partition::{DataRow, Partition, Put, RowSnapshot, HEADER_BYTES};
pub use remote::{serve_frame, RemoteTable, StoreReq};
pub use ring::{key_hash, Placement};
pub use stamp::WriteStamp;
pub use table::{LwtOutcome, Proposal, ReplicatedTable, TableConfig, TableReplica};
