//! Scalar write timestamps, the store's last-write-wins ordering domain.

use std::fmt;

/// A scalar write timestamp, as stored in a Cassandra cell.
///
/// The store itself only compares stamps; *what* they encode is the caller's
/// business. The MUSIC layer encodes vector timestamps `(lockRef, time)`
/// through the order-preserving `v2s` mapping (§VI); the lock store encodes
/// Paxos ballots.
///
/// # Examples
///
/// ```
/// use music_quorumstore::WriteStamp;
///
/// let old = WriteStamp::new(10);
/// let new = WriteStamp::new(11);
/// assert!(new > old);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct WriteStamp(u64);

impl WriteStamp {
    /// The stamp smaller than every real write (cells start here).
    pub const ZERO: WriteStamp = WriteStamp(0);

    /// Creates a stamp from its scalar encoding.
    pub const fn new(v: u64) -> Self {
        WriteStamp(v)
    }

    /// The scalar encoding.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for WriteStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

impl From<u64> for WriteStamp {
    fn from(v: u64) -> Self {
        WriteStamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_scalar() {
        assert!(WriteStamp::new(2) > WriteStamp::new(1));
        assert_eq!(WriteStamp::ZERO, WriteStamp::new(0));
        assert_eq!(WriteStamp::from(7).value(), 7);
    }
}
