//! [`TableApi`]: the coordinator-facing store interface the MUSIC protocol
//! layers are generic over.
//!
//! The MUSIC replica and the lock store do not care *where* a table's
//! replicas live — they need quorum reads/writes, LWTs, and scans with the
//! paper's semantics. This trait captures exactly that surface, with two
//! implementations:
//!
//! * [`ReplicatedTable`] — replicas held in-process and reached over the
//!   deterministic simulated network. Every method delegates verbatim to
//!   the existing inherent method, so protocol code compiled against this
//!   impl behaves byte-for-byte like code that called the table directly.
//! * [`RemoteTable`](crate::remote::RemoteTable) — replicas hosted by other
//!   processes (`music-node`) and reached through a
//!   [`Transport`](music_runtime::Transport): real sockets in production,
//!   the simulated transport in tests.
//!
//! The associated [`TableApi::Rt`] runtime carries the clock, timers, and
//! spawner the protocol layer above uses for its own timeouts and
//! background tasks, so one type parameter pins both the store flavour and
//! the runtime flavour.

use std::fmt;

use music_runtime::Runtime;
use music_simnet::executor::Sim;
use music_simnet::net::NodeId;
use music_telemetry::Recorder;

use crate::error::StoreError;
use crate::partition::Partition;
use crate::stamp::WriteStamp;
use crate::table::{LwtOutcome, ReplicatedTable};

/// The coordinator-facing surface of a replicated table of `P` partitions.
///
/// Methods mirror [`ReplicatedTable`]'s inherent operations one-for-one;
/// see those for full semantics and failure modes. Implementations are
/// cheap-to-clone handles (like the stores they front).
#[allow(async_fn_in_trait)] // single-threaded runtimes: futures are !Send by design
pub trait TableApi<P: Partition>: Clone + fmt::Debug + 'static {
    /// The runtime this table's coordinator operations run on.
    type Rt: Runtime;

    /// The runtime handle (clock/timers/spawner) protocol layers share.
    fn rt(&self) -> &Self::Rt;

    /// The telemetry recorder operations report into.
    fn recorder(&self) -> Recorder;

    /// Eventual-consistency read (CL=ONE); see [`ReplicatedTable::read_one`].
    async fn read_one(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError>;

    /// Quorum read (`dsGetQuorum`); see [`ReplicatedTable::read_quorum`].
    async fn read_quorum(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError>;

    /// Eventual-consistency write (CL=ONE); see [`ReplicatedTable::write_one`].
    async fn write_one(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> Result<(), StoreError>;

    /// Quorum write (`dsPutQuorum`); see [`ReplicatedTable::write_quorum`].
    async fn write_quorum(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> Result<(), StoreError>;

    /// Starts a quorum write without awaiting it; see
    /// [`ReplicatedTable::write_quorum_spawned`].
    fn write_quorum_spawned(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> <Self::Rt as Runtime>::JoinHandle<Result<(), StoreError>>;

    /// Four-phase light-weight transaction; see [`ReplicatedTable::lwt`].
    async fn lwt(
        &self,
        coord: NodeId,
        key: &str,
        decide: impl FnMut(&P::Snapshot, WriteStamp) -> Option<(P::Mutation, WriteStamp)>,
    ) -> Result<LwtOutcome<P>, StoreError>;

    /// Sorted live keys at the nearest replica; see
    /// [`ReplicatedTable::list_keys_local`].
    async fn list_keys_local(&self, coord: NodeId) -> Result<Vec<String>, StoreError>;

    /// Range scan at the nearest replica; see
    /// [`ReplicatedTable::scan_local`].
    ///
    /// Remote implementations ship whole partitions over the wire (as a
    /// real range scan returns rows) and run `extract` client-side, so the
    /// extractor never crosses a socket.
    async fn scan_local<R: 'static>(
        &self,
        coord: NodeId,
        extract: impl Fn(&P) -> R + 'static,
    ) -> Result<Vec<(String, R)>, StoreError>;
}

impl<P: Partition> TableApi<P> for ReplicatedTable<P> {
    type Rt = Sim;

    fn rt(&self) -> &Sim {
        self.net().sim()
    }

    fn recorder(&self) -> Recorder {
        self.net().recorder()
    }

    async fn read_one(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError> {
        ReplicatedTable::read_one(self, coord, key).await
    }

    async fn read_quorum(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError> {
        ReplicatedTable::read_quorum(self, coord, key).await
    }

    async fn write_one(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> Result<(), StoreError> {
        ReplicatedTable::write_one(self, coord, key, mutation, stamp).await
    }

    async fn write_quorum(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> Result<(), StoreError> {
        ReplicatedTable::write_quorum(self, coord, key, mutation, stamp).await
    }

    fn write_quorum_spawned(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> <Sim as Runtime>::JoinHandle<Result<(), StoreError>> {
        ReplicatedTable::write_quorum_spawned(self, coord, key, mutation, stamp)
    }

    async fn lwt(
        &self,
        coord: NodeId,
        key: &str,
        decide: impl FnMut(&P::Snapshot, WriteStamp) -> Option<(P::Mutation, WriteStamp)>,
    ) -> Result<LwtOutcome<P>, StoreError> {
        ReplicatedTable::lwt(self, coord, key, decide).await
    }

    async fn list_keys_local(&self, coord: NodeId) -> Result<Vec<String>, StoreError> {
        ReplicatedTable::list_keys_local(self, coord).await
    }

    async fn scan_local<R: 'static>(
        &self,
        coord: NodeId,
        extract: impl Fn(&P) -> R + 'static,
    ) -> Result<Vec<(String, R)>, StoreError> {
        ReplicatedTable::scan_local(self, coord, extract).await
    }
}
