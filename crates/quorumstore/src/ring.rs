//! Replica placement: which store nodes hold a key.
//!
//! Mirrors Cassandra's ring with `NetworkTopologyStrategy`-style site
//! spreading: nodes are ordered site-interleaved (`s0n0, s1n0, s2n0, s0n1,
//! …`), a key hashes to a primary position, and the `rf` consecutive nodes
//! from there hold its replicas — consecutive positions land on distinct
//! sites, so every site owns one copy (the paper keeps "one copy of each
//! key-value pair on each site").

/// Deterministic FNV-1a hash of a key (stable across runs and platforms).
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Placement of keys onto a fixed set of `nodes` with replication factor
/// `rf`.
///
/// # Examples
///
/// ```
/// use music_quorumstore::Placement;
///
/// let p = Placement::new(9, 3);
/// let replicas = p.replicas_of("job-42");
/// assert_eq!(replicas.len(), 3);
/// // With site-interleaved node ordering, consecutive indices are on
/// // distinct sites.
/// ```
#[derive(Clone, Debug)]
pub struct Placement {
    node_count: usize,
    rf: usize,
}

impl Placement {
    /// Creates a placement over `node_count` nodes with replication factor
    /// `rf`.
    ///
    /// # Panics
    ///
    /// Panics if `rf == 0` or `rf > node_count`.
    pub fn new(node_count: usize, rf: usize) -> Self {
        assert!(rf >= 1, "replication factor must be at least 1");
        assert!(
            rf <= node_count,
            "replication factor {rf} exceeds cluster size {node_count}"
        );
        Placement { node_count, rf }
    }

    /// Replication factor.
    pub fn rf(&self) -> usize {
        self.rf
    }

    /// Size of a majority quorum among the replicas of any key.
    pub fn quorum(&self) -> usize {
        self.rf / 2 + 1
    }

    /// Number of nodes in the ring.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Indices (into the node list) of the replicas holding `key`, primary
    /// first.
    pub fn replicas_of(&self, key: &str) -> Vec<usize> {
        let primary = (key_hash(key) % self.node_count as u64) as usize;
        (0..self.rf)
            .map(|i| (primary + i) % self.node_count)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable() {
        assert_eq!(key_hash("abc"), key_hash("abc"));
        assert_ne!(key_hash("abc"), key_hash("abd"));
        // Pinned value guards against accidental algorithm changes, which
        // would silently re-shard persisted experiment setups.
        assert_eq!(key_hash(""), 0xcbf29ce484222325);
    }

    #[test]
    fn full_replication_uses_all_nodes() {
        let p = Placement::new(3, 3);
        let mut r = p.replicas_of("anything");
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2]);
    }

    #[test]
    fn sharded_placement_is_consecutive_and_distinct() {
        let p = Placement::new(9, 3);
        for key in ["a", "b", "c", "hello", "job-17"] {
            let r = p.replicas_of(key);
            assert_eq!(r.len(), 3);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
            assert_eq!(r[1], (r[0] + 1) % 9);
            assert_eq!(r[2], (r[0] + 2) % 9);
        }
    }

    #[test]
    fn keys_spread_across_primaries() {
        let p = Placement::new(9, 3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            seen.insert(p.replicas_of(&format!("key-{i}"))[0]);
        }
        assert!(
            seen.len() >= 8,
            "expected most primaries used, got {seen:?}"
        );
    }

    #[test]
    fn quorum_is_majority_of_rf() {
        assert_eq!(Placement::new(3, 3).quorum(), 2);
        assert_eq!(Placement::new(9, 3).quorum(), 2);
        assert_eq!(Placement::new(5, 5).quorum(), 3);
        assert_eq!(Placement::new(4, 1).quorum(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds cluster size")]
    fn oversized_rf_panics() {
        Placement::new(2, 3);
    }
}
