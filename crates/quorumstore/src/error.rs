//! Store error types.

use std::fmt;

/// Errors surfaced by coordinator operations.
///
/// Failed operations mirror the paper's failure semantics (§III-A): the
/// store nacks when it cannot reach a quorum of replicas, and the *client*
/// is responsible for retrying (possibly at a different MUSIC replica).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// A quorum of replicas did not answer within the operation timeout.
    Unavailable,
    /// An LWT lost the ballot race too many times in a row.
    Contention,
}

impl StoreError {
    /// Stable camel-case code for telemetry fields.
    pub fn code(self) -> &'static str {
        match self {
            StoreError::Unavailable => "unavailable",
            StoreError::Contention => "contention",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Unavailable => write!(f, "quorum of replicas unavailable"),
            StoreError::Contention => write!(f, "light-weight transaction lost ballot contention"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_prose() {
        assert_eq!(
            StoreError::Unavailable.to_string(),
            "quorum of replicas unavailable"
        );
        assert!(StoreError::Contention.to_string().contains("contention"));
    }

    #[test]
    fn codes_are_camel_case() {
        assert_eq!(StoreError::Unavailable.code(), "unavailable");
        assert_eq!(StoreError::Contention.code(), "contention");
    }
}
