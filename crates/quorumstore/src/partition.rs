//! The [`Partition`] abstraction: per-key replica state with last-write-wins
//! cells, plus [`DataRow`] — the plain key-value partition used by the MUSIC
//! data store.
//!
//! A partition is the unit of replication and of LWT serialization (exactly
//! as in Cassandra, where Paxos runs per partition). All mutations are
//! **absolute** cell writes carrying a [`WriteStamp`]; a replica applies a
//! cell write only if its stamp exceeds the cell's current stamp. Absolute
//! mutations are what make missed commits harmless — a straggler replica is
//! repaired by any later propagation, with no re-execution logic.

use bytes::Bytes;

use crate::stamp::WriteStamp;

/// Replica-side state of one key's partition.
///
/// Implementations must keep `apply` commutative-by-stamp: applying the same
/// set of mutations in any order must converge to the same state. The
/// provided [`DataRow`] and the lock store's partition both achieve this
/// with per-cell last-write-wins.
pub trait Partition: Default + Clone + std::fmt::Debug + 'static {
    /// An absolute (read-free) state change, replicated through quorum
    /// writes or LWT commits.
    type Mutation: Clone + std::fmt::Debug + 'static;
    /// The value returned by reads; must carry enough stamps for
    /// [`Partition::reconcile`] to pick the newest, and be comparable so
    /// the read path can detect divergent replicas (digest mismatch).
    type Snapshot: Clone + PartialEq + std::fmt::Debug + 'static;

    /// Reads the partition's current state.
    fn snapshot(&self) -> Self::Snapshot;

    /// Applies a mutation, honouring last-write-wins per cell.
    fn apply(&mut self, mutation: &Self::Mutation, stamp: WriteStamp);

    /// Combines two snapshots read from different replicas into the newest
    /// view (Cassandra's read-path reconciliation).
    fn reconcile(a: Self::Snapshot, b: Self::Snapshot) -> Self::Snapshot;

    /// Approximate wire size of a snapshot, for the bandwidth model.
    fn snapshot_bytes(s: &Self::Snapshot) -> usize;

    /// Approximate wire size of a mutation, for the bandwidth model.
    fn mutation_bytes(m: &Self::Mutation) -> usize;

    /// Whether this partition holds live data (used by key scans; a
    /// tombstoned or never-written partition returns `false`).
    fn exists(&self) -> bool {
        true
    }

    /// Stamped mutations that bring any replica up to (at least) the state
    /// of `newest` — the write-back side of read repair. Last-write-wins
    /// application makes them no-ops wherever a replica is already
    /// current. Return an empty vector to opt a partition type out of
    /// read repair.
    fn repair(newest: &Self::Snapshot) -> Vec<(Self::Mutation, WriteStamp)> {
        let _ = newest;
        Vec::new()
    }
}

/// Fixed per-message envelope size used by the cost model.
pub const HEADER_BYTES: usize = 48;

/// Total order on cell contents used to break *equal-stamp* ties, as
/// Cassandra does: tombstones beat live values, live values compare
/// lexicographically. Makes `apply` commutative even under stamp
/// collisions.
fn tie_break_wins(candidate: &Option<Bytes>, incumbent: &Option<Bytes>) -> bool {
    match (candidate, incumbent) {
        (None, Some(_)) => true,
        (Some(_), None) | (None, None) => false,
        (Some(a), Some(b)) => a > b,
    }
}

/// A single key-value cell with last-write-wins semantics — the partition
/// type of the MUSIC **data store**.
///
/// `value = None` is a tombstone (the row was deleted or never written).
///
/// # Examples
///
/// ```
/// use music_quorumstore::{DataRow, Partition, Put, WriteStamp};
/// use bytes::Bytes;
///
/// let mut row = DataRow::default();
/// row.apply(&Put::value(Bytes::from_static(b"v1")), WriteStamp::new(5));
/// // An older write loses:
/// row.apply(&Put::value(Bytes::from_static(b"v0")), WriteStamp::new(3));
/// assert_eq!(row.snapshot().value.unwrap(), Bytes::from_static(b"v1"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DataRow {
    value: Option<Bytes>,
    stamp: WriteStamp,
}

/// Mutation for [`DataRow`]: overwrite the cell (or delete it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Put {
    /// New value, `None` to delete.
    pub value: Option<Bytes>,
}

impl Put {
    /// A put of `value`.
    pub fn value(value: Bytes) -> Self {
        Put { value: Some(value) }
    }

    /// A delete.
    pub fn delete() -> Self {
        Put { value: None }
    }
}

/// Snapshot of a [`DataRow`]: the value (if any) and its stamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowSnapshot {
    /// Current value; `None` if deleted/absent.
    pub value: Option<Bytes>,
    /// Stamp of the last applied write.
    pub stamp: WriteStamp,
}

impl Partition for DataRow {
    type Mutation = Put;
    type Snapshot = RowSnapshot;

    fn snapshot(&self) -> RowSnapshot {
        RowSnapshot {
            value: self.value.clone(),
            stamp: self.stamp,
        }
    }

    fn apply(&mut self, mutation: &Put, stamp: WriteStamp) {
        if stamp > self.stamp
            || (stamp == self.stamp && tie_break_wins(&mutation.value, &self.value))
        {
            self.value = mutation.value.clone();
            self.stamp = stamp;
        }
    }

    fn reconcile(a: RowSnapshot, b: RowSnapshot) -> RowSnapshot {
        if b.stamp > a.stamp || (b.stamp == a.stamp && tie_break_wins(&b.value, &a.value)) {
            b
        } else {
            a
        }
    }

    fn snapshot_bytes(s: &RowSnapshot) -> usize {
        HEADER_BYTES + s.value.as_ref().map_or(0, |v| v.len())
    }

    fn mutation_bytes(m: &Put) -> usize {
        HEADER_BYTES + m.value.as_ref().map_or(0, |v| v.len())
    }

    fn exists(&self) -> bool {
        self.value.is_some()
    }

    fn repair(newest: &RowSnapshot) -> Vec<(Put, WriteStamp)> {
        if newest.stamp == WriteStamp::ZERO {
            Vec::new() // nothing ever written
        } else {
            vec![(
                Put {
                    value: newest.value.clone(),
                },
                newest.stamp,
            )]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn apply_is_last_write_wins() {
        let mut row = DataRow::default();
        row.apply(&Put::value(b("a")), WriteStamp::new(1));
        row.apply(&Put::value(b("b")), WriteStamp::new(3));
        row.apply(&Put::value(b("c")), WriteStamp::new(2));
        let s = row.snapshot();
        assert_eq!(s.value, Some(b("b")));
        assert_eq!(s.stamp, WriteStamp::new(3));
    }

    #[test]
    fn equal_stamps_break_ties_by_value() {
        // Cassandra semantics: on equal timestamps the lexicographically
        // greater value wins (and a tombstone beats any live value), so
        // the outcome is order-independent.
        let mut row = DataRow::default();
        row.apply(&Put::value(b("a")), WriteStamp::new(1));
        row.apply(&Put::value(b("z")), WriteStamp::new(1));
        assert_eq!(row.snapshot().value, Some(b("z")));
        let mut row2 = DataRow::default();
        row2.apply(&Put::value(b("z")), WriteStamp::new(1));
        row2.apply(&Put::value(b("a")), WriteStamp::new(1));
        assert_eq!(row2.snapshot().value, Some(b("z")));
        row.apply(&Put::delete(), WriteStamp::new(1));
        assert_eq!(row.snapshot().value, None, "tombstone wins ties");
    }

    #[test]
    fn delete_is_a_stamped_tombstone() {
        let mut row = DataRow::default();
        row.apply(&Put::value(b("a")), WriteStamp::new(1));
        row.apply(&Put::delete(), WriteStamp::new(2));
        assert_eq!(row.snapshot().value, None);
        // A stale write after the tombstone does not resurrect the value.
        row.apply(&Put::value(b("ghost")), WriteStamp::new(1));
        assert_eq!(row.snapshot().value, None);
    }

    #[test]
    fn reconcile_picks_newest() {
        let a = RowSnapshot {
            value: Some(b("old")),
            stamp: WriteStamp::new(1),
        };
        let bb = RowSnapshot {
            value: Some(b("new")),
            stamp: WriteStamp::new(2),
        };
        assert_eq!(
            DataRow::reconcile(a.clone(), bb.clone()).value,
            Some(b("new"))
        );
        assert_eq!(DataRow::reconcile(bb, a).value, Some(b("new")));
    }

    #[test]
    fn apply_order_converges() {
        // Commutativity-by-stamp: any permutation converges.
        let writes = [
            (Put::value(b("a")), WriteStamp::new(5)),
            (Put::delete(), WriteStamp::new(9)),
            (Put::value(b("b")), WriteStamp::new(7)),
            (Put::value(b("c")), WriteStamp::new(2)),
        ];
        let mut perms: Vec<Vec<usize>> = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    for l in 0..4 {
                        let p = vec![i, j, k, l];
                        let mut sorted = p.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        if sorted.len() == 4 {
                            perms.push(p);
                        }
                    }
                }
            }
        }
        let mut states = Vec::new();
        for p in perms {
            let mut row = DataRow::default();
            for idx in p {
                let (m, ts) = &writes[idx];
                row.apply(m, *ts);
            }
            states.push(row.snapshot());
        }
        for s in &states {
            assert_eq!(s, &states[0]);
            assert_eq!(s.value, None); // tombstone at ts 9 wins
        }
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Put::value(b("x"));
        let large = Put::value(Bytes::from(vec![0u8; 1000]));
        assert!(DataRow::mutation_bytes(&large) > DataRow::mutation_bytes(&small));
        assert_eq!(DataRow::mutation_bytes(&large), HEADER_BYTES + 1000);
    }
}
