//! [`RemoteTable`]: the same coordinator protocol as [`ReplicatedTable`],
//! spoken to *out-of-process* replicas over a
//! [`Transport`](music_runtime::Transport).
//!
//! A `music-node` process hosts one [`TableReplica`] per store and answers
//! [`StoreReq`] frames via [`serve_frame`]; this module's coordinator
//! re-implements the quorum and LWT state machines of
//! [`crate::table`] over typed request/response calls instead of the
//! simulated network's closure RPCs. The replica-side state transitions are
//! *the same code* in both worlds — `TableReplica::{snapshot, apply,
//! acceptor}` — so sim-validated semantics carry over to sockets.
//!
//! Differences from the simulated coordinator, all forced by the medium:
//!
//! * **No latency oracle.** The simulator routes CL=ONE reads and scans to
//!   the replica nearest the coordinator by querying the topology; a real
//!   client has no such oracle, so those paths target the key's primary
//!   (first placement replica) and the first store node respectively.
//! * **Scans ship rows.** `scan_local`'s extractor closure cannot cross a
//!   socket; the server returns whole live partitions (as a real range
//!   query returns rows) and the extractor runs client-side.
//! * **Failures are explicit.** A dead socket errors instead of going
//!   silent; the fan-out converts persistent per-replica errors into
//!   never-completing futures so quorum accounting matches the simulator's
//!   (a lost replica stalls, and the operation timeout decides).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

use music_paxos::{choose_value, Ballot, BallotGenerator, Chosen, PrepareReply};
use music_runtime::{call_reliable, never, quorum, timeout, Runtime, Transport};
use music_runtime::{Wire, WireError, WireReader};
use music_simnet::net::NodeId;
use music_simnet::time::SimDuration;
use music_telemetry::{EventKind, LwtPhase, Recorder, Scope};

use crate::api::TableApi;
use crate::error::StoreError;
use crate::partition::{DataRow, Partition, Put, RowSnapshot};
use crate::ring::{key_hash, Placement};
use crate::stamp::WriteStamp;
use crate::table::{LwtOutcome, Proposal, TableConfig, TableReplica};

/// How many times a fan-out RPC is retransmitted before the replica is
/// written off, mirroring the simulated `rpc_reliable` budget.
const RPC_ATTEMPTS: u32 = 10;

/// Retransmission interval for fan-out RPCs (the simulated value).
const RPC_RETRY_AFTER: SimDuration = SimDuration::from_secs(2);

// ---------------------------------------------------------------------------
// Wire codecs for the store's value types.
// ---------------------------------------------------------------------------

impl Wire for WriteStamp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value().encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WriteStamp::new(u64::decode(r)?))
    }
}

impl Wire for Put {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Put {
            value: Wire::decode(r)?,
        })
    }
}

impl Wire for RowSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value.encode(buf);
        self.stamp.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RowSnapshot {
            value: Wire::decode(r)?,
            stamp: Wire::decode(r)?,
        })
    }
}

// A `DataRow` is exactly its snapshot: replaying the cell as one stamped
// put onto a default row reconstructs identical state (last-write-wins,
// and a live value always carries a non-zero stamp).
impl Wire for DataRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.snapshot().encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let snap = RowSnapshot::decode(r)?;
        let mut row = DataRow::default();
        row.apply(&Put { value: snap.value }, snap.stamp);
        Ok(row)
    }
}

// `Ballot` lives in `music-paxos`, which does not know about the wire
// format (orphan rule), so it is framed by these helpers.
fn encode_ballot(b: Ballot, buf: &mut Vec<u8>) {
    b.round.encode(buf);
    b.proposer.encode(buf);
}

fn decode_ballot(r: &mut WireReader<'_>) -> Result<Ballot, WireError> {
    let round = u64::decode(r)?;
    let proposer = u32::decode(r)?;
    Ok(Ballot::new(round, proposer))
}

// ---------------------------------------------------------------------------
// Request / response frames.
// ---------------------------------------------------------------------------

/// One coordinator→replica request of the store protocol. The response type
/// depends on the variant: snapshots for reads, paxos replies for LWT
/// phases, unit acks for writes.
pub enum StoreReq<P: Partition> {
    /// Read one partition's snapshot.
    Snapshot {
        /// Partition key.
        key: String,
    },
    /// Apply a stamped mutation (quorum/eventual write).
    Apply {
        /// Partition key.
        key: String,
        /// The mutation.
        mutation: P::Mutation,
        /// Its last-write-wins stamp.
        stamp: WriteStamp,
    },
    /// LWT phase 1: prepare/promise.
    Prepare {
        /// Partition key.
        key: String,
        /// The coordinator's ballot.
        ballot: Ballot,
    },
    /// LWT phase 3: propose/accept.
    Accept {
        /// Partition key.
        key: String,
        /// The coordinator's ballot.
        ballot: Ballot,
        /// Proposed mutation.
        mutation: P::Mutation,
        /// Stamp the mutation commits with.
        stamp: WriteStamp,
    },
    /// LWT phase 4: commit (clears the round and applies the mutation).
    Commit {
        /// Partition key.
        key: String,
        /// The committing ballot.
        ballot: Ballot,
        /// Committed mutation.
        mutation: P::Mutation,
        /// Stamp the mutation is applied with.
        stamp: WriteStamp,
    },
    /// Sorted keys of all live partitions.
    ListKeys,
    /// All live partitions (range scan).
    Scan,
}

impl<P: Partition> Clone for StoreReq<P> {
    fn clone(&self) -> Self {
        match self {
            StoreReq::Snapshot { key } => StoreReq::Snapshot { key: key.clone() },
            StoreReq::Apply {
                key,
                mutation,
                stamp,
            } => StoreReq::Apply {
                key: key.clone(),
                mutation: mutation.clone(),
                stamp: *stamp,
            },
            StoreReq::Prepare { key, ballot } => StoreReq::Prepare {
                key: key.clone(),
                ballot: *ballot,
            },
            StoreReq::Accept {
                key,
                ballot,
                mutation,
                stamp,
            } => StoreReq::Accept {
                key: key.clone(),
                ballot: *ballot,
                mutation: mutation.clone(),
                stamp: *stamp,
            },
            StoreReq::Commit {
                key,
                ballot,
                mutation,
                stamp,
            } => StoreReq::Commit {
                key: key.clone(),
                ballot: *ballot,
                mutation: mutation.clone(),
                stamp: *stamp,
            },
            StoreReq::ListKeys => StoreReq::ListKeys,
            StoreReq::Scan => StoreReq::Scan,
        }
    }
}

impl<P: Partition> Wire for StoreReq<P>
where
    P::Mutation: Wire,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StoreReq::Snapshot { key } => {
                buf.push(0);
                key.encode(buf);
            }
            StoreReq::Apply {
                key,
                mutation,
                stamp,
            } => {
                buf.push(1);
                key.encode(buf);
                mutation.encode(buf);
                stamp.encode(buf);
            }
            StoreReq::Prepare { key, ballot } => {
                buf.push(2);
                key.encode(buf);
                encode_ballot(*ballot, buf);
            }
            StoreReq::Accept {
                key,
                ballot,
                mutation,
                stamp,
            } => {
                buf.push(3);
                key.encode(buf);
                encode_ballot(*ballot, buf);
                mutation.encode(buf);
                stamp.encode(buf);
            }
            StoreReq::Commit {
                key,
                ballot,
                mutation,
                stamp,
            } => {
                buf.push(4);
                key.encode(buf);
                encode_ballot(*ballot, buf);
                mutation.encode(buf);
                stamp.encode(buf);
            }
            StoreReq::ListKeys => buf.push(5),
            StoreReq::Scan => buf.push(6),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => StoreReq::Snapshot {
                key: String::decode(r)?,
            },
            1 => StoreReq::Apply {
                key: String::decode(r)?,
                mutation: Wire::decode(r)?,
                stamp: Wire::decode(r)?,
            },
            2 => StoreReq::Prepare {
                key: String::decode(r)?,
                ballot: decode_ballot(r)?,
            },
            3 => StoreReq::Accept {
                key: String::decode(r)?,
                ballot: decode_ballot(r)?,
                mutation: Wire::decode(r)?,
                stamp: Wire::decode(r)?,
            },
            4 => StoreReq::Commit {
                key: String::decode(r)?,
                ballot: decode_ballot(r)?,
                mutation: Wire::decode(r)?,
                stamp: Wire::decode(r)?,
            },
            5 => StoreReq::ListKeys,
            6 => StoreReq::Scan,
            _ => return Err(WireError("invalid store request tag")),
        })
    }
}

/// Wire form of a [`PrepareReply`] (the in-progress proposal flattened to
/// its mutation + stamp).
pub struct WirePrepareReply<P: Partition> {
    /// Whether the ballot was promised.
    pub promised: bool,
    /// The replica's current promise (for ballot observation).
    pub current_promise: Ballot,
    /// An accepted-but-uncommitted proposal, if the replica holds one.
    pub in_progress: Option<(Ballot, P::Mutation, WriteStamp)>,
}

impl<P: Partition> WirePrepareReply<P> {
    fn from_reply(reply: PrepareReply<Proposal<P>>) -> Self {
        WirePrepareReply {
            promised: reply.promised,
            current_promise: reply.current_promise,
            in_progress: reply.in_progress.map(|(b, p)| (b, p.mutation, p.stamp)),
        }
    }

    fn into_reply(self) -> PrepareReply<Proposal<P>> {
        PrepareReply {
            promised: self.promised,
            current_promise: self.current_promise,
            in_progress: self
                .in_progress
                .map(|(b, mutation, stamp)| (b, Proposal { mutation, stamp })),
        }
    }
}

impl<P: Partition> Wire for WirePrepareReply<P>
where
    P::Mutation: Wire,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        self.promised.encode(buf);
        encode_ballot(self.current_promise, buf);
        match &self.in_progress {
            None => buf.push(0),
            Some((b, m, s)) => {
                buf.push(1);
                encode_ballot(*b, buf);
                m.encode(buf);
                s.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let promised = bool::decode(r)?;
        let current_promise = decode_ballot(r)?;
        let in_progress = match r.u8()? {
            0 => None,
            1 => Some((decode_ballot(r)?, Wire::decode(r)?, Wire::decode(r)?)),
            _ => return Err(WireError("invalid in-progress tag")),
        };
        Ok(WirePrepareReply {
            promised,
            current_promise,
            in_progress,
        })
    }
}

/// Wire form of an accept reply.
pub struct WireAcceptReply {
    /// Whether the proposal was accepted.
    pub accepted: bool,
    /// The replica's current promise.
    pub current_promise: Ballot,
}

impl Wire for WireAcceptReply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.accepted.encode(buf);
        encode_ballot(self.current_promise, buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WireAcceptReply {
            accepted: bool::decode(r)?,
            current_promise: decode_ballot(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Server side.
// ---------------------------------------------------------------------------

/// Serves one raw [`StoreReq`] frame against a replica's state, returning
/// the encoded response. This is the entire replica-side protocol of
/// `music-node`: decode, run the same state transition the simulated
/// replica runs, encode.
///
/// A frame that fails to decode yields an empty response, which the
/// coordinator's typed decode rejects (and retries — every request is
/// idempotent by stamps/ballots).
pub fn serve_frame<P>(replica: &mut TableReplica<P>, raw: &[u8]) -> Vec<u8>
where
    P: Partition + Wire,
    P::Mutation: Wire,
    P::Snapshot: Wire,
{
    let Ok(req) = StoreReq::<P>::from_slice(raw) else {
        return Vec::new();
    };
    match req {
        StoreReq::Snapshot { key } => replica.snapshot(&key).to_vec(),
        StoreReq::Apply {
            key,
            mutation,
            stamp,
        } => {
            replica.apply(&key, &mutation, stamp);
            ().to_vec()
        }
        StoreReq::Prepare { key, ballot } => {
            let reply = replica.acceptor(&key).prepare(ballot);
            WirePrepareReply::from_reply(reply).to_vec()
        }
        StoreReq::Accept {
            key,
            ballot,
            mutation,
            stamp,
        } => {
            let reply = replica
                .acceptor(&key)
                .accept(ballot, Proposal { mutation, stamp });
            WireAcceptReply {
                accepted: reply.accepted,
                current_promise: reply.current_promise,
            }
            .to_vec()
        }
        StoreReq::Commit {
            key,
            ballot,
            mutation,
            stamp,
        } => {
            let _ = replica.acceptor(&key).commit(ballot);
            replica.apply(&key, &mutation, stamp);
            ().to_vec()
        }
        StoreReq::ListKeys => replica.live_keys().to_vec(),
        StoreReq::Scan => replica.live_partitions().to_vec(),
    }
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

struct RemoteInner<P: Partition, T: Transport> {
    transport: T,
    nodes: Vec<NodeId>,
    placement: Placement,
    cfg: TableConfig,
    recorder: Recorder,
    ballots: RefCell<HashMap<(NodeId, String), BallotGenerator>>,
    _partition: PhantomData<P>,
}

/// A client-side coordinator for a table whose replicas live in other
/// processes, reached via `T`. Implements [`TableApi`] with the same
/// quorum/LWT state machines as [`crate::table::ReplicatedTable`].
pub struct RemoteTable<P: Partition, T: Transport> {
    inner: Rc<RemoteInner<P, T>>,
}

impl<P: Partition, T: Transport> Clone for RemoteTable<P, T> {
    fn clone(&self) -> Self {
        RemoteTable {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<P: Partition, T: Transport> fmt::Debug for RemoteTable<P, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteTable")
            .field("nodes", &self.inner.nodes)
            .field("rf", &self.inner.placement.rf())
            .finish()
    }
}

impl<P, T> RemoteTable<P, T>
where
    P: Partition + Wire,
    P::Mutation: Wire,
    P::Snapshot: Wire,
    T: Transport,
{
    /// A coordinator for replicas at `nodes` with replication factor `rf`.
    ///
    /// # Panics
    ///
    /// Panics if `rf` is zero or exceeds `nodes.len()`.
    pub fn new(
        transport: T,
        nodes: Vec<NodeId>,
        rf: usize,
        cfg: TableConfig,
        recorder: Recorder,
    ) -> Self {
        let placement = Placement::new(nodes.len(), rf);
        RemoteTable {
            inner: Rc::new(RemoteInner {
                transport,
                nodes,
                placement,
                cfg,
                recorder,
                ballots: RefCell::new(HashMap::new()),
                _partition: PhantomData,
            }),
        }
    }

    /// The transport requests travel over.
    pub fn transport(&self) -> &T {
        &self.inner.transport
    }

    /// Node ids of all store replicas.
    pub fn nodes(&self) -> &[NodeId] {
        &self.inner.nodes
    }

    fn replica_nodes(&self, key: &str) -> Vec<NodeId> {
        self.inner
            .placement
            .replicas_of(key)
            .into_iter()
            .map(|i| self.inner.nodes[i])
            .collect()
    }

    fn quorum_size(&self) -> usize {
        self.inner.placement.quorum()
    }

    fn emit(&self, node: NodeId, kind: impl FnOnce() -> EventKind) {
        let rec = &self.inner.recorder;
        if rec.is_tracing() {
            let rt = &self.inner.transport;
            rec.record(rt.now().as_micros(), rt.trace(), node.0, kind());
        }
    }

    fn count(&self, node: NodeId, name: &'static str, n: u64) {
        let rec = &self.inner.recorder;
        if rec.is_on() {
            rec.count(Scope::Node(node.0), name, n);
        }
    }

    /// One reliable typed call per replica of `key`. Each task retries with
    /// the simulator's retransmission budget; a replica that stays
    /// unreachable parks forever, so quorum accounting sees the same
    /// "silent replica" a simulated fan-out sees and the operation timeout
    /// decides the outcome.
    fn fan_out<Resp: Wire + 'static>(
        &self,
        coord: NodeId,
        key: &str,
        req: &StoreReq<P>,
    ) -> Vec<<T as Runtime>::JoinHandle<Resp>> {
        self.replica_nodes(key)
            .into_iter()
            .map(|node| self.call_spawned(coord, node, req.clone()))
            .collect()
    }

    fn call_spawned<Resp: Wire + 'static>(
        &self,
        coord: NodeId,
        node: NodeId,
        req: StoreReq<P>,
    ) -> <T as Runtime>::JoinHandle<Resp> {
        let transport = self.inner.transport.clone();
        transport.clone().spawn(async move {
            match call_reliable(&transport, coord, node, &req, RPC_ATTEMPTS, RPC_RETRY_AFTER).await
            {
                Ok(resp) => resp,
                // Out of retries: behave like a silent replica.
                Err(_) => never().await,
            }
        })
    }

    async fn quorum_calls<Resp: Wire + 'static>(
        &self,
        coord: NodeId,
        key: &str,
        req: &StoreReq<P>,
        need: usize,
    ) -> Result<Vec<(usize, Resp)>, StoreError> {
        let handles = self.fan_out(coord, key, req);
        timeout(
            &self.inner.transport,
            self.inner.cfg.op_timeout,
            quorum(handles, need),
        )
        .await
        .map_err(|_| StoreError::Unavailable)
    }

    async fn write_with_cl(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
        need: usize,
    ) -> Result<(), StoreError> {
        let req = StoreReq::Apply {
            key: key.to_string(),
            mutation,
            stamp,
        };
        self.quorum_calls::<()>(coord, key, &req, need).await?;
        self.count(coord, "quorum_writes", 1);
        self.emit(coord, || EventKind::QuorumWrite {
            key: key.to_string(),
            acks: need as u32,
        });
        Ok(())
    }

    async fn read_quorum_inner(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError> {
        let need = self.quorum_size();
        let req = StoreReq::Snapshot {
            key: key.to_string(),
        };
        let replies = self
            .quorum_calls::<P::Snapshot>(coord, key, &req, need)
            .await?;
        let snaps: Vec<P::Snapshot> = replies.into_iter().map(|(_, s)| s).collect();
        self.count(coord, "quorum_reads", 1);
        self.emit(coord, || EventKind::QuorumRead {
            key: key.to_string(),
            replies: snaps.len() as u32,
        });
        let mut it = snaps.iter().cloned();
        let first = it.next().expect("quorum >= 1");
        let newest = it.fold(first, |acc, s| P::reconcile(acc, s));
        if snaps.iter().any(|s| *s != newest) {
            self.count(coord, "read_repairs", 1);
            self.emit(coord, || EventKind::ReadRepair {
                key: key.to_string(),
            });
            for (mutation, stamp) in P::repair(&newest) {
                let req = StoreReq::Apply {
                    key: key.to_string(),
                    mutation,
                    stamp,
                };
                // Background write-back to every replica.
                drop(self.fan_out::<()>(coord, key, &req));
            }
        }
        Ok(newest)
    }

    fn ballot_stamp(ballot: Ballot) -> WriteStamp {
        assert!(
            u64::from(ballot.proposer) < (1 << 20),
            "LWT coordinator node id {} exceeds the stamp's proposer field",
            ballot.proposer
        );
        WriteStamp::new((ballot.round << 20) | u64::from(ballot.proposer))
    }

    fn next_ballot(&self, coord: NodeId, key: &str) -> Ballot {
        let mut ballots = self.inner.ballots.borrow_mut();
        let gen = ballots
            .entry((coord, key.to_string()))
            .or_insert_with(|| BallotGenerator::new(coord.0));
        gen.next()
    }

    fn observe_ballot(&self, coord: NodeId, key: &str, ballot: Ballot) {
        let mut ballots = self.inner.ballots.borrow_mut();
        let gen = ballots
            .entry((coord, key.to_string()))
            .or_insert_with(|| BallotGenerator::new(coord.0));
        gen.observe(ballot);
    }

    async fn accept_quorum(
        &self,
        coord: NodeId,
        key: &str,
        ballot: Ballot,
        proposal: Proposal<P>,
    ) -> Result<bool, StoreError> {
        let req = StoreReq::Accept {
            key: key.to_string(),
            ballot,
            mutation: proposal.mutation,
            stamp: proposal.stamp,
        };
        let need = self.quorum_size();
        let replies = self
            .quorum_calls::<WireAcceptReply>(coord, key, &req, need)
            .await?;
        let mut ok = true;
        for (_, reply) in &replies {
            self.observe_ballot(coord, key, reply.current_promise);
            ok &= reply.accepted;
        }
        Ok(ok)
    }

    async fn commit_quorum(
        &self,
        coord: NodeId,
        key: &str,
        ballot: Ballot,
        proposal: &Proposal<P>,
    ) -> Result<(), StoreError> {
        let req = StoreReq::Commit {
            key: key.to_string(),
            ballot,
            mutation: proposal.mutation.clone(),
            stamp: proposal.stamp,
        };
        let need = self.quorum_size();
        self.quorum_calls::<()>(coord, key, &req, need).await?;
        Ok(())
    }

    async fn lwt_inner(
        &self,
        coord: NodeId,
        key: &str,
        mut decide: impl FnMut(&P::Snapshot, WriteStamp) -> Option<(P::Mutation, WriteStamp)>,
    ) -> Result<LwtOutcome<P>, StoreError> {
        let rt = self.inner.transport.clone();
        for attempt in 0..self.inner.cfg.lwt_retries {
            if attempt > 0 {
                self.count(coord, "lwt_retries", 1);
                self.emit(coord, || EventKind::LwtRetry {
                    key: key.to_string(),
                    attempt,
                });
                // Same deterministic jittered back-off as the simulated
                // coordinator: racing proposers must desynchronize.
                let exp = 1u64 << attempt.min(6);
                let jitter = key_hash(&format!("{}-{}-{}", coord.0, key, attempt))
                    % (self.inner.cfg.lwt_backoff.as_micros().max(1) * exp);
                let backoff =
                    self.inner.cfg.lwt_backoff * exp / 2 + SimDuration::from_micros(jitter);
                rt.sleep(backoff).await;
            }
            let ballot = self.next_ballot(coord, key);
            let ballot_code = (ballot.round << 20) | u64::from(ballot.proposer);
            self.emit(coord, || EventKind::Lwt {
                key: key.to_string(),
                phase: LwtPhase::Prepare,
                ballot: ballot_code,
            });

            // Phase 1: prepare / promise.
            let req = StoreReq::Prepare {
                key: key.to_string(),
                ballot,
            };
            let need = self.quorum_size();
            let replies = self
                .quorum_calls::<WirePrepareReply<P>>(coord, key, &req, need)
                .await?;
            let mut promises = Vec::new();
            let mut preempted = false;
            for (_, reply) in replies {
                self.observe_ballot(coord, key, reply.current_promise);
                let reply = reply.into_reply();
                if reply.promised {
                    promises.push(reply);
                } else {
                    preempted = true;
                }
            }
            if preempted || promises.len() < need {
                continue;
            }

            // Complete any in-progress proposal before our own update.
            if let Chosen::MustComplete(_, proposal) = choose_value(&promises) {
                self.emit(coord, || EventKind::Lwt {
                    key: key.to_string(),
                    phase: LwtPhase::MustComplete,
                    ballot: ballot_code,
                });
                if self
                    .accept_quorum(coord, key, ballot, proposal.clone())
                    .await?
                {
                    self.commit_quorum(coord, key, ballot, &proposal).await?;
                }
                continue;
            }

            // Phase 2: quorum read of the current partition state.
            self.emit(coord, || EventKind::Lwt {
                key: key.to_string(),
                phase: LwtPhase::Read,
                ballot: ballot_code,
            });
            let before = self.read_quorum_inner(coord, key).await?;

            // Phase 3: decide and propose.
            let Some((mutation, stamp)) = decide(&before, Self::ballot_stamp(ballot)) else {
                self.emit(coord, || EventKind::LwtResult {
                    key: key.to_string(),
                    applied: false,
                    attempts: attempt + 1,
                });
                return Ok(LwtOutcome {
                    applied: false,
                    before,
                });
            };
            self.emit(coord, || EventKind::Lwt {
                key: key.to_string(),
                phase: LwtPhase::Propose,
                ballot: ballot_code,
            });
            let proposal = Proposal { mutation, stamp };
            if !self
                .accept_quorum(coord, key, ballot, proposal.clone())
                .await?
            {
                continue;
            }

            // Phase 4: commit (replicas apply the mutation).
            self.emit(coord, || EventKind::Lwt {
                key: key.to_string(),
                phase: LwtPhase::Commit,
                ballot: ballot_code,
            });
            self.commit_quorum(coord, key, ballot, &proposal).await?;
            self.emit(coord, || EventKind::LwtResult {
                key: key.to_string(),
                applied: true,
                attempts: attempt + 1,
            });
            return Ok(LwtOutcome {
                applied: true,
                before,
            });
        }
        self.count(coord, "lwt_contention", 1);
        Err(StoreError::Contention)
    }

    /// One direct (single-attempt) call with the operation timeout — the
    /// remote analogue of the simulator's plain `rpc` paths.
    async fn call_once<Resp: Wire + 'static>(
        &self,
        coord: NodeId,
        node: NodeId,
        req: &StoreReq<P>,
    ) -> Result<Resp, StoreError> {
        let transport = &self.inner.transport;
        let fut = music_runtime::call::<T, StoreReq<P>, Resp>(transport, coord, node, req);
        timeout(transport, self.inner.cfg.op_timeout, fut)
            .await
            .map_err(|_| StoreError::Unavailable)?
            .map_err(|_| StoreError::Unavailable)
    }
}

impl<P, T> TableApi<P> for RemoteTable<P, T>
where
    P: Partition + Wire,
    P::Mutation: Wire,
    P::Snapshot: Wire,
    T: Transport,
{
    type Rt = T;

    fn rt(&self) -> &T {
        &self.inner.transport
    }

    fn recorder(&self) -> Recorder {
        self.inner.recorder.clone()
    }

    async fn read_one(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError> {
        // No latency oracle off-simulation: target the key's primary.
        let node = self.replica_nodes(key)[0];
        let req = StoreReq::Snapshot {
            key: key.to_string(),
        };
        self.call_once(coord, node, &req).await
    }

    async fn read_quorum(&self, coord: NodeId, key: &str) -> Result<P::Snapshot, StoreError> {
        self.read_quorum_inner(coord, key).await
    }

    async fn write_one(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> Result<(), StoreError> {
        self.write_with_cl(coord, key, mutation, stamp, 1).await
    }

    async fn write_quorum(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> Result<(), StoreError> {
        let need = self.quorum_size();
        self.write_with_cl(coord, key, mutation, stamp, need).await
    }

    fn write_quorum_spawned(
        &self,
        coord: NodeId,
        key: &str,
        mutation: P::Mutation,
        stamp: WriteStamp,
    ) -> <T as Runtime>::JoinHandle<Result<(), StoreError>> {
        let table = self.clone();
        let key = key.to_string();
        self.inner
            .transport
            .spawn(async move { table.write_quorum(coord, &key, mutation, stamp).await })
    }

    async fn lwt(
        &self,
        coord: NodeId,
        key: &str,
        decide: impl FnMut(&P::Snapshot, WriteStamp) -> Option<(P::Mutation, WriteStamp)>,
    ) -> Result<LwtOutcome<P>, StoreError> {
        self.lwt_inner(coord, key, decide).await
    }

    async fn list_keys_local(&self, coord: NodeId) -> Result<Vec<String>, StoreError> {
        let node = self.inner.nodes[0];
        self.call_once(coord, node, &StoreReq::ListKeys).await
    }

    async fn scan_local<R: 'static>(
        &self,
        coord: NodeId,
        extract: impl Fn(&P) -> R + 'static,
    ) -> Result<Vec<(String, R)>, StoreError> {
        let node = self.inner.nodes[0];
        let rows: Vec<(String, P)> = self.call_once(coord, node, &StoreReq::Scan).await?;
        Ok(rows.into_iter().map(|(k, p)| (k, extract(&p))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use music_runtime::SimTransport;
    use music_simnet::executor::Sim;
    use music_simnet::net::{NetConfig, Network};
    use music_simnet::topology::{LatencyProfile, SiteId};

    fn remote_fixture() -> (Sim, RemoteTable<DataRow, SimTransport>, NodeId) {
        let sim = Sim::new();
        let net = Network::new(
            sim.clone(),
            LatencyProfile::one_l(),
            NetConfig::default(),
            7,
        );
        let nodes: Vec<_> = (0..3).map(|_| net.add_node(SiteId(0))).collect();
        let client = net.add_node(SiteId(0));
        let transport = SimTransport::new(net);
        for &n in &nodes {
            let mut replica = TableReplica::<DataRow>::new();
            transport.serve(n, move |raw| serve_frame(&mut replica, raw));
        }
        let recorder = Recorder::off();
        let table = RemoteTable::new(transport, nodes, 3, TableConfig::default(), recorder);
        (sim, table, client)
    }

    #[test]
    fn quorum_write_then_read_roundtrips() {
        let (sim, table, client) = remote_fixture();
        let t = table.clone();
        sim.block_on(async move {
            t.write_quorum(
                client,
                "k",
                Put::value(Bytes::from_static(b"v")),
                WriteStamp::new(1),
            )
            .await
            .unwrap();
            let snap = t.read_quorum(client, "k").await.unwrap();
            assert_eq!(snap.value.unwrap(), Bytes::from_static(b"v"));
        });
    }

    #[test]
    fn lwt_applies_and_read_one_sees_it() {
        let (sim, table, client) = remote_fixture();
        let t = table.clone();
        sim.block_on(async move {
            let out = t
                .lwt(client, "cas", |before, stamp| {
                    assert!(before.value.is_none());
                    Some((Put::value(Bytes::from_static(b"won")), stamp))
                })
                .await
                .unwrap();
            assert!(out.applied);
            let snap = t.read_one(client, "cas").await.unwrap();
            assert_eq!(snap.value.unwrap(), Bytes::from_static(b"won"));
            // A compare-failed LWT leaves the row alone.
            let out = t
                .lwt(client, "cas", |before, _| {
                    assert!(before.value.is_some());
                    None
                })
                .await
                .unwrap();
            assert!(!out.applied);
        });
    }

    #[test]
    fn scans_and_key_listing_work_over_the_wire() {
        let (sim, table, client) = remote_fixture();
        let t = table.clone();
        sim.block_on(async move {
            for key in ["a", "b"] {
                t.write_quorum(
                    client,
                    key,
                    Put::value(Bytes::from_static(b"x")),
                    WriteStamp::new(1),
                )
                .await
                .unwrap();
            }
            let keys = t.list_keys_local(client).await.unwrap();
            assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
            let rows = t
                .scan_local(client, |p: &DataRow| p.snapshot().value)
                .await
                .unwrap();
            assert_eq!(rows.len(), 2);
            assert!(rows.iter().all(|(_, v)| v.is_some()));
        });
    }

    #[test]
    fn store_requests_roundtrip_the_codec() {
        let reqs: Vec<StoreReq<DataRow>> = vec![
            StoreReq::Snapshot { key: "k".into() },
            StoreReq::Apply {
                key: "k".into(),
                mutation: Put::value(Bytes::from_static(b"v")),
                stamp: WriteStamp::new(9),
            },
            StoreReq::Prepare {
                key: "k".into(),
                ballot: Ballot::new(3, 1),
            },
            StoreReq::ListKeys,
            StoreReq::Scan,
        ];
        for req in reqs {
            let buf = req.to_vec();
            let back = StoreReq::<DataRow>::from_slice(&buf).unwrap();
            assert_eq!(buf, back.to_vec());
        }
    }
}
