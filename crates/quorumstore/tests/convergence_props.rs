//! Property tests on the store's replica-state algebra: last-write-wins
//! convergence (order independence), reconcile laws, and ring placement
//! invariants.

use bytes::Bytes;
use music_quorumstore::{DataRow, Partition, Placement, Put, WriteStamp};
use proptest::prelude::*;

prop_compose! {
    fn arb_write()(stamp in 1u64..50, val in 0u8..8, delete in proptest::bool::weighted(0.2))
        -> (Put, WriteStamp)
    {
        let put = if delete {
            Put::delete()
        } else {
            Put::value(Bytes::from(vec![val]))
        };
        (put, WriteStamp::new(stamp))
    }
}

proptest! {
    /// Applying the same multiset of writes in any two orders converges to
    /// the same row — the property that makes missed LWT commits and
    /// straggler quorum writes harmless.
    #[test]
    fn lww_apply_is_order_independent(
        writes in proptest::collection::vec(arb_write(), 1..12),
        seed in 0u64..1000,
    ) {
        let mut a = DataRow::default();
        for (m, ts) in &writes {
            a.apply(m, *ts);
        }
        // Deterministic shuffle.
        let mut shuffled = writes.clone();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut b = DataRow::default();
        for (m, ts) in &shuffled {
            b.apply(m, *ts);
        }
        prop_assert_eq!(a.snapshot(), b.snapshot());
    }

    /// Reconcile is commutative and idempotent, and never goes backwards
    /// in stamp.
    #[test]
    fn reconcile_laws(w1 in arb_write(), w2 in arb_write()) {
        let mut r1 = DataRow::default();
        r1.apply(&w1.0, w1.1);
        let mut r2 = DataRow::default();
        r2.apply(&w2.0, w2.1);
        let (s1, s2) = (r1.snapshot(), r2.snapshot());
        let ab = DataRow::reconcile(s1.clone(), s2.clone());
        let ba = DataRow::reconcile(s2.clone(), s1.clone());
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.stamp >= s1.stamp && ab.stamp >= s2.stamp);
        let aa = DataRow::reconcile(s1.clone(), s1.clone());
        prop_assert_eq!(aa, s1);
    }

    /// Ring placement: always rf distinct replicas, deterministic, and —
    /// with site-interleaved node ordering — spanning rf distinct sites.
    #[test]
    fn placement_invariants(
        key in "[a-z0-9/-]{1,24}",
        nodes_per_site in 1usize..5,
    ) {
        let sites = 3;
        let p = Placement::new(sites * nodes_per_site, 3);
        let r1 = p.replicas_of(&key);
        let r2 = p.replicas_of(&key);
        prop_assert_eq!(&r1, &r2, "deterministic");
        prop_assert_eq!(r1.len(), 3);
        let mut uniq = r1.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), 3, "distinct replicas");
        let site_set: std::collections::HashSet<usize> =
            r1.iter().map(|i| i % sites).collect();
        prop_assert_eq!(site_set.len(), 3, "one replica per site");
    }
}
