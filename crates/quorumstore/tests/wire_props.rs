//! Property tests on the store's wire codec: every payload type that
//! crosses a socket round-trips bit-for-bit, and corrupted payloads
//! (truncations, trailing bytes) are rejected instead of misdecoded.

use bytes::Bytes;
use music_paxos::Ballot;
use music_quorumstore::remote::{WireAcceptReply, WirePrepareReply};
use music_quorumstore::{DataRow, Partition, Put, RowSnapshot, StoreReq, WriteStamp};
use music_runtime::Wire;
use proptest::prelude::*;

// Key pattern for request strategies (the `&str` strategy yields Strings).
const KEY: &str = "[a-z]{0,12}";

fn arb_value() -> impl Strategy<Value = Option<Bytes>> {
    (0u8..3, proptest::collection::vec(0u8..=255, 0..64))
        .prop_map(|(tag, v)| (tag > 0).then(|| Bytes::from(v)))
}

fn arb_put() -> impl Strategy<Value = Put> {
    arb_value().prop_map(|value| Put { value })
}

fn arb_snapshot() -> impl Strategy<Value = RowSnapshot> {
    (arb_value(), 0u64..=u64::MAX).prop_map(|(value, s)| RowSnapshot {
        value,
        stamp: WriteStamp::new(s),
    })
}

fn arb_ballot() -> impl Strategy<Value = Ballot> {
    (0u64..=u64::MAX, 0u32..=u32::MAX).prop_map(|(round, proposer)| Ballot::new(round, proposer))
}

fn arb_req() -> impl Strategy<Value = StoreReq<DataRow>> {
    prop_oneof![
        KEY.prop_map(|key| StoreReq::Snapshot { key }),
        (KEY, arb_put(), 0u64..=u64::MAX).prop_map(|(key, mutation, s)| StoreReq::Apply {
            key,
            mutation,
            stamp: WriteStamp::new(s),
        }),
        (KEY, arb_ballot()).prop_map(|(key, ballot)| StoreReq::Prepare { key, ballot }),
        (KEY, arb_ballot(), arb_put(), 0u64..=u64::MAX).prop_map(|(key, ballot, mutation, s)| {
            StoreReq::Accept {
                key,
                ballot,
                mutation,
                stamp: WriteStamp::new(s),
            }
        }),
        (KEY, arb_ballot(), arb_put(), 0u64..=u64::MAX).prop_map(|(key, ballot, mutation, s)| {
            StoreReq::Commit {
                key,
                ballot,
                mutation,
                stamp: WriteStamp::new(s),
            }
        }),
        Just(StoreReq::ListKeys),
        Just(StoreReq::Scan),
    ]
}

proptest! {
    /// `WriteStamp` survives the wire exactly — the LWW ordering domain
    /// must not be perturbed by transport.
    #[test]
    fn write_stamp_roundtrips(s in 0u64..=u64::MAX) {
        let stamp = WriteStamp::new(s);
        prop_assert_eq!(WriteStamp::from_slice(&stamp.to_vec()).unwrap(), stamp);
    }

    /// `Put` and `RowSnapshot` round-trip, including tombstones (`None`)
    /// and empty values — which are distinct states and must stay so.
    #[test]
    fn put_and_snapshot_roundtrip(put in arb_put(), snap in arb_snapshot()) {
        prop_assert_eq!(Put::from_slice(&put.to_vec()).unwrap(), put);
        prop_assert_eq!(RowSnapshot::from_slice(&snap.to_vec()).unwrap(), snap);
    }

    /// A `DataRow` decodes to a replica cell with the identical snapshot
    /// *and* the identical LWW behaviour: a write older than the private
    /// stamp is ignored on both sides of the trip.
    #[test]
    fn data_row_roundtrips_with_stamp_fidelity(
        value in arb_value(),
        stamp in 2u64..=u64::MAX,
    ) {
        let mut row = DataRow::default();
        row.apply(&Put { value }, WriteStamp::new(stamp));
        let back = DataRow::from_slice(&row.to_vec()).unwrap();
        prop_assert_eq!(back.snapshot(), row.snapshot());
        // The decoded row must still reject writes below its stamp.
        let mut a = row.clone();
        let mut b = back;
        let stale = Put::value(Bytes::from_static(b"stale"));
        a.apply(&stale, WriteStamp::new(stamp - 1));
        b.apply(&stale, WriteStamp::new(stamp - 1));
        prop_assert_eq!(a.snapshot(), b.snapshot());
        prop_assert_eq!(a.snapshot(), row.snapshot());
    }

    /// Every request variant re-encodes to the same bytes after a decode
    /// (encodings are canonical, so byte equality is value equality).
    #[test]
    fn store_requests_roundtrip(req in arb_req()) {
        let buf = req.to_vec();
        let back = StoreReq::<DataRow>::from_slice(&buf).unwrap();
        prop_assert_eq!(back.to_vec(), buf);
    }

    /// Paxos replies round-trip, in-progress proposal and all.
    #[test]
    fn paxos_replies_roundtrip(
        promised in proptest::bool::weighted(0.5),
        current in arb_ballot(),
        with_in_progress in proptest::bool::weighted(0.5),
        in_progress in (arb_ballot(), arb_put(), 0u64..=u64::MAX),
        accepted in proptest::bool::weighted(0.5),
    ) {
        let reply = WirePrepareReply::<DataRow> {
            promised,
            current_promise: current,
            in_progress: with_in_progress
                .then(|| (in_progress.0, in_progress.1.clone(), WriteStamp::new(in_progress.2))),
        };
        let buf = reply.to_vec();
        let back = WirePrepareReply::<DataRow>::from_slice(&buf).unwrap();
        prop_assert_eq!(back.to_vec(), buf);

        let ack = WireAcceptReply { accepted, current_promise: current };
        let buf = ack.to_vec();
        let back = WireAcceptReply::from_slice(&buf).unwrap();
        prop_assert_eq!(back.accepted, ack.accepted);
        prop_assert_eq!(back.current_promise, ack.current_promise);
    }

    /// No prefix of a valid encoding decodes, and no valid encoding with
    /// junk appended decodes: a misframed payload can never silently
    /// produce a plausible request.
    #[test]
    fn corrupt_framings_are_rejected(req in arb_req(), junk in 0u8..=255) {
        let buf = req.to_vec();
        for cut in 0..buf.len() {
            prop_assert!(
                StoreReq::<DataRow>::from_slice(&buf[..cut]).is_err(),
                "prefix of length {} decoded",
                cut
            );
        }
        let mut long = buf;
        long.push(junk);
        prop_assert!(StoreReq::<DataRow>::from_slice(&long).is_err(), "trailing byte accepted");
    }
}
