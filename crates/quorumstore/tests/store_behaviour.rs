//! End-to-end behaviour of the replicated store over the simulated WAN:
//! latency structure, consistency levels, failure handling, and LWT
//! linearizability.

use bytes::Bytes;
use music_quorumstore::{
    DataRow, Partition, Put, ReplicatedTable, StoreError, TableConfig, WriteStamp,
};
use music_simnet::prelude::*;

struct Fixture {
    sim: Sim,
    net: Network,
    table: ReplicatedTable<DataRow>,
    store_nodes: Vec<NodeId>,
    clients: Vec<NodeId>,
}

/// One store node and one client per site of `profile`, zero service costs
/// (pure latency structure).
fn fixture(profile: LatencyProfile) -> Fixture {
    fixture_with(
        profile,
        NetConfig {
            service_fixed: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX / 2,
            loss: 0.0,
            jitter_frac: 0.0,
        },
    )
}

fn fixture_with(profile: LatencyProfile, cfg: NetConfig) -> Fixture {
    let sim = Sim::new();
    let net = Network::new(sim.clone(), profile.clone(), cfg, 7);
    let store_nodes: Vec<_> = (0..profile.site_count() as u32)
        .map(|s| net.add_node(SiteId(s)))
        .collect();
    let clients: Vec<_> = (0..profile.site_count() as u32)
        .map(|s| net.add_node(SiteId(s)))
        .collect();
    let table = ReplicatedTable::new(net.clone(), store_nodes.clone(), 3, TableConfig::default());
    Fixture {
        sim,
        net,
        table,
        store_nodes,
        clients,
    }
}

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

#[test]
fn quorum_write_then_quorum_read_round_trips() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client) = (f.table.clone(), f.clients[0]);
    f.sim.block_on(async move {
        table
            .write_quorum(client, "k", Put::value(b("hello")), WriteStamp::new(1))
            .await
            .unwrap();
        let snap = table.read_quorum(client, "k").await.unwrap();
        assert_eq!(snap.value, Some(b("hello")));
        assert_eq!(snap.stamp, WriteStamp::new(1));
    });
}

#[test]
fn quorum_write_latency_is_one_rtt_to_second_nearest_replica() {
    // Client at Ohio (site 0); replicas at Ohio/N.Cal/Oregon. Quorum = 2:
    // the local replica (0.2ms RTT) and the nearest remote (N.Cal, 53.79ms).
    let f = fixture(LatencyProfile::one_us());
    let (table, client, sim) = (f.table.clone(), f.clients[0], f.sim.clone());
    let elapsed = f.sim.block_on(async move {
        let t0 = sim.now();
        table
            .write_quorum(client, "k", Put::value(b("x")), WriteStamp::new(1))
            .await
            .unwrap();
        sim.now() - t0
    });
    assert_eq!(elapsed.as_micros(), 53_790);
}

#[test]
fn eventual_write_acks_locally_and_converges_globally() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client, sim) = (f.table.clone(), f.clients[0], f.sim.clone());
    let table2 = f.table.clone();
    let elapsed = f.sim.block_on(async move {
        let t0 = sim.now();
        table
            .write_one(client, "k", Put::value(b("v")), WriteStamp::new(1))
            .await
            .unwrap();
        sim.now() - t0
    });
    // Acknowledged by the intra-site replica: one intra-site RTT (0.2ms).
    assert_eq!(elapsed.as_micros(), 200);
    // Background propagation has not necessarily finished yet; drain it.
    f.sim.run();
    assert!(
        table2.converged("k"),
        "all replicas converge after propagation"
    );
}

#[test]
fn eventual_read_hits_nearest_replica_and_may_be_stale() {
    let f = fixture(LatencyProfile::one_us());
    let table = f.table.clone();
    let (ohio_client, frankfurt_client) = (f.clients[0], f.clients[2]);
    f.sim.block_on(async move {
        table
            .write_quorum(ohio_client, "k", Put::value(b("new")), WriteStamp::new(5))
            .await
            .unwrap();
        // Quorum = Ohio + N.Cal; the Oregon replica may still be stale.
        let near = table.read_one(frankfurt_client, "k").await.unwrap();
        // Value is either stale (None) or new, but never corrupt.
        assert!(near.value.is_none() || near.value == Some(b("new")));
    });
}

#[test]
fn quorum_survives_one_replica_crash_but_not_two() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client, net) = (f.table.clone(), f.clients[0], f.net.clone());
    let (s1, s2) = (f.store_nodes[1], f.store_nodes[2]);
    f.sim.block_on(async move {
        net.set_node_up(s2, false);
        table
            .write_quorum(client, "k", Put::value(b("v1")), WriteStamp::new(1))
            .await
            .expect("quorum of 2/3 still available");
        net.set_node_up(s1, false);
        let err = table
            .write_quorum(client, "k", Put::value(b("v2")), WriteStamp::new(2))
            .await
            .unwrap_err();
        assert_eq!(err, StoreError::Unavailable);
        // Reads also fail without a quorum.
        let err = table.read_quorum(client, "k").await.unwrap_err();
        assert_eq!(err, StoreError::Unavailable);
    });
}

#[test]
fn unacknowledged_write_may_still_land() {
    // The coordinator times out (no quorum), yet the surviving replica has
    // applied the write: this is the "pending forever" case of §V-C that
    // MUSIC's synchFlag machinery exists to repair.
    let f = fixture(LatencyProfile::one_us());
    let (table, client, net) = (f.table.clone(), f.clients[0], f.net.clone());
    let (s1, s2) = (f.store_nodes[1], f.store_nodes[2]);
    let table2 = f.table.clone();
    f.sim.block_on(async move {
        net.set_node_up(s1, false);
        net.set_node_up(s2, false);
        let err = table
            .write_quorum(client, "k", Put::value(b("ghost")), WriteStamp::new(9))
            .await
            .unwrap_err();
        assert_eq!(err, StoreError::Unavailable);
    });
    f.sim.run();
    // Replica 0 (co-located with the client) applied it anyway.
    let snap = table2.peek_replica(0, "k");
    assert_eq!(snap.value, Some(b("ghost")));
}

#[test]
fn lwt_takes_about_four_wan_round_trips() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client, sim) = (f.table.clone(), f.clients[0], f.sim.clone());
    let elapsed = f.sim.block_on(async move {
        let t0 = sim.now();
        table
            .lwt(client, "k", |_, suggested| {
                Some((Put::value(b("cas")), suggested))
            })
            .await
            .unwrap();
        sim.now() - t0
    });
    // 4 phases × quorum RTT (53.79ms) = ~215ms, matching the paper's
    // measured 219-230ms for LWT operations on the 1Us profile (§VIII-b).
    assert_eq!(elapsed.as_micros(), 4 * 53_790);
}

#[test]
fn lwt_compare_failure_reports_current_state() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client) = (f.table.clone(), f.clients[0]);
    f.sim.block_on(async move {
        table
            .write_quorum(client, "k", Put::value(b("taken")), WriteStamp::new(1))
            .await
            .unwrap();
        let outcome = table
            .lwt(client, "k", |snap, suggested| {
                if snap.value.is_none() {
                    Some((Put::value(b("mine")), suggested))
                } else {
                    None // compare failed: key already set
                }
            })
            .await
            .unwrap();
        assert!(!outcome.applied);
        assert_eq!(outcome.before.value, Some(b("taken")));
        let snap = table.read_quorum(client, "k").await.unwrap();
        assert_eq!(snap.value, Some(b("taken")));
    });
}

#[test]
fn racing_lwt_appends_apply_exactly_once() {
    // Linearizability test with *idempotent* CAS operations (blind
    // increments can legitimately double-apply under LWT retries, exactly
    // as in Cassandra): each worker appends its unique tag only if the tag
    // is not yet present. Every tag must end up present exactly once.
    let f = fixture(LatencyProfile::one_us());
    let table = f.table.clone();
    let clients = f.clients.clone();
    let sim = f.sim.clone();
    let total: usize = 10;
    let mut handles = Vec::new();
    for i in 0..total {
        let table = table.clone();
        let client = clients[i % 3];
        let tag = format!("w{i}");
        handles.push(sim.spawn(async move {
            loop {
                let res = table
                    .lwt(client, "set", |snap, suggested| {
                        let cur = snap
                            .value
                            .as_ref()
                            .map(|v| String::from_utf8(v.to_vec()).unwrap())
                            .unwrap_or_default();
                        if cur.split(',').any(|t| t == tag) {
                            return None; // already applied
                        }
                        let next = if cur.is_empty() {
                            tag.clone()
                        } else {
                            format!("{cur},{tag}")
                        };
                        Some((Put::value(Bytes::from(next.into_bytes())), suggested))
                    })
                    .await;
                if res.is_ok() {
                    break;
                }
                // Contention: client-level retry, per §III-A failure
                // semantics.
            }
        }));
    }
    sim.run();
    for h in &handles {
        assert!(h.is_done(), "all appends completed");
    }
    let final_snap = f.sim.block_on({
        let table = table.clone();
        let client = clients[0];
        async move { table.read_quorum(client, "set").await.unwrap() }
    });
    let text = String::from_utf8(final_snap.value.unwrap().to_vec()).unwrap();
    let mut tags: Vec<&str> = text.split(',').collect();
    tags.sort_unstable();
    let mut expected: Vec<String> = (0..total).map(|i| format!("w{i}")).collect();
    expected.sort();
    assert_eq!(tags, expected, "each tag applied exactly once");
}

#[test]
fn lwt_under_message_loss_still_linearizes() {
    let mut cfg = NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.05,
        jitter_frac: 0.1,
    };
    cfg.loss = 0.05;
    let f = fixture_with(LatencyProfile::one_us(), cfg);
    let table = f.table.clone();
    let clients = f.clients.clone();
    let sim = f.sim.clone();
    let total: u64 = 6;
    let done = std::rc::Rc::new(std::cell::Cell::new(0u64));
    for i in 0..total {
        let table = table.clone();
        let client = clients[(i % 3) as usize];
        let done = std::rc::Rc::clone(&done);
        sim.spawn(async move {
            // Clients retry on Unavailable, as the paper's failure
            // semantics require.
            loop {
                let res = table
                    .lwt(client, "counter", |snap, suggested| {
                        let cur = snap
                            .value
                            .as_ref()
                            .map(|v| {
                                let mut buf = [0u8; 8];
                                buf.copy_from_slice(v);
                                u64::from_be_bytes(buf)
                            })
                            .unwrap_or(0);
                        Some((
                            Put::value(Bytes::copy_from_slice(&(cur + 1).to_be_bytes())),
                            suggested,
                        ))
                    })
                    .await;
                if res.is_ok() {
                    done.set(done.get() + 1);
                    break;
                }
            }
        });
    }
    sim.run();
    assert_eq!(done.get(), total, "all increments eventually succeeded");
    let final_snap = f.sim.block_on({
        let table = table.clone();
        let client = clients[0];
        async move { table.read_quorum(client, "counter").await.unwrap() }
    });
    let mut buf = [0u8; 8];
    buf.copy_from_slice(final_snap.value.as_ref().unwrap());
    // Loss can cause an unacknowledged LWT to be retried after it actually
    // applied, so the counter may exceed `total` — but it can never be less.
    assert!(
        u64::from_be_bytes(buf) >= total,
        "no lost updates under loss"
    );
}

#[test]
fn scan_local_lists_live_rows_in_order() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client) = (f.table.clone(), f.clients[0]);
    let table2 = f.table.clone();
    f.sim.block_on(async move {
        for key in ["cherry", "apple", "banana"] {
            table
                .write_quorum(client, key, Put::value(b("x")), WriteStamp::new(1))
                .await
                .unwrap();
        }
        // A deleted row must not appear.
        table
            .write_quorum(client, "apple", Put::delete(), WriteStamp::new(2))
            .await
            .unwrap();
    });
    f.sim.run();
    let rows = f.sim.block_on(async move {
        table2
            .scan_local(f.clients[0], |p: &DataRow| p.snapshot().value)
            .await
            .unwrap()
    });
    let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        vec!["banana", "cherry"],
        "sorted, tombstones excluded"
    );
}

#[test]
fn transient_partition_only_delays_propagation() {
    // rpc_reliable retransmission: a replica cut off during a write still
    // receives it after the partition heals (within the retry window).
    let f = fixture(LatencyProfile::one_us());
    let (table, client, net) = (f.table.clone(), f.clients[0], f.net.clone());
    let s2 = f.store_nodes[2];
    let table2 = f.table.clone();
    f.sim.block_on(async move {
        net.set_link(client, s2, false);
        table
            .write_quorum(client, "k", Put::value(b("through")), WriteStamp::new(3))
            .await
            .unwrap();
        // Heal within the retransmission window (10 × 2 s).
        net.sim().sleep(SimDuration::from_secs(5)).await;
        net.set_link(client, s2, true);
    });
    f.sim.run();
    assert_eq!(
        table2.peek_replica(2, "k").value,
        Some(b("through")),
        "retransmission delivered the write after healing"
    );
}

#[test]
fn read_repair_heals_divergent_replicas() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client, net) = (f.table.clone(), f.clients[0], f.net.clone());
    let s2 = f.store_nodes[2];
    let table2 = f.table.clone();
    f.sim.block_on(async move {
        // Write while one replica is dead: it stays stale even after its
        // recovery (the propagation window has passed).
        net.set_node_up(s2, false);
        table
            .write_quorum(client, "k", Put::value(b("fresh")), WriteStamp::new(7))
            .await
            .unwrap();
    });
    f.sim.run(); // exhaust retransmission attempts against the dead node
    f.net.set_node_up(s2, true);
    assert_eq!(
        f.table.peek_replica(2, "k").value,
        None,
        "replica 2 is stale"
    );

    // A quorum read that *sees the divergence* repairs all replicas.
    // Force the read to include the stale replica by killing replica 0.
    let (table, client, net) = (f.table.clone(), f.clients[1], f.net.clone());
    let s0 = f.store_nodes[0];
    f.sim.block_on(async move {
        net.set_node_up(s0, false);
        let snap = table.read_quorum(client, "k").await.unwrap();
        assert_eq!(snap.value, Some(b("fresh")), "reconciled value is correct");
        net.set_node_up(s0, true);
    });
    f.sim.run(); // let the repair writes land
    assert_eq!(
        table2.peek_replica(2, "k").value,
        Some(b("fresh")),
        "read repair healed the straggler"
    );
}

#[test]
fn anti_entropy_sweep_heals_everything() {
    // Diverge one replica across several keys (writes during a partition,
    // retransmission window exhausted), then one repair_all pass heals it.
    let f = fixture(LatencyProfile::one_us());
    let (table, client, net) = (f.table.clone(), f.clients[0], f.net.clone());
    let s2 = f.store_nodes[2];
    let table2 = f.table.clone();
    f.sim.block_on(async move {
        net.set_node_up(s2, false);
        for i in 0..4 {
            table
                .write_quorum(
                    client,
                    &format!("ae-{i}"),
                    Put::value(b("healed")),
                    WriteStamp::new(5),
                )
                .await
                .unwrap();
        }
    });
    f.sim.run(); // exhaust retransmissions against the dead node
    f.net.set_node_up(s2, true);
    for i in 0..4 {
        assert_eq!(f.table.peek_replica(2, &format!("ae-{i}")).value, None);
    }

    let (table, client) = (f.table.clone(), f.clients[1]);
    let repaired = f
        .sim
        .block_on(async move { table.repair_all(client).await.unwrap() });
    assert_eq!(repaired, 4, "all four keys were divergent");
    f.sim.run(); // let straggler repair writes land
    for i in 0..4 {
        let key = format!("ae-{i}");
        assert!(table2.converged(&key), "{key} healed everywhere");
        assert_eq!(table2.peek_replica(2, &key).value, Some(b("healed")));
    }

    // A second sweep finds nothing to do.
    let (table, client) = (f.table.clone(), f.clients[1]);
    let repaired = f
        .sim
        .block_on(async move { table.repair_all(client).await.unwrap() });
    assert_eq!(repaired, 0, "idempotent once converged");
}

#[test]
fn anti_entropy_tolerates_a_down_replica() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client, net) = (f.table.clone(), f.clients[0], f.net.clone());
    let s1 = f.store_nodes[1];
    f.sim.block_on(async move {
        table
            .write_quorum(client, "k", Put::value(b("v")), WriteStamp::new(1))
            .await
            .unwrap();
        net.set_node_up(s1, false);
        // Repair proceeds with the majority that answers.
        let repaired = table.repair_all(client).await.unwrap();
        let _ = repaired; // divergence depends on straggler timing; key point: no error
        net.set_node_up(s1, true);
    });
}

#[test]
fn sharded_nine_node_cluster_places_and_serves_keys() {
    let sim = Sim::new();
    let profile = LatencyProfile::one_us();
    let net = Network::new(sim.clone(), profile, NetConfig::default(), 3);
    // 9 nodes, site-interleaved: s0 s1 s2 s0 s1 s2 s0 s1 s2.
    let nodes: Vec<_> = (0..9).map(|i| net.add_node(SiteId(i % 3))).collect();
    let client = net.add_node(SiteId(0));
    let table: ReplicatedTable<DataRow> =
        ReplicatedTable::new(net, nodes, 3, TableConfig::default());
    let table2 = table.clone();
    sim.block_on(async move {
        for i in 0..30 {
            let key = format!("key-{i}");
            table
                .write_quorum(client, &key, Put::value(b("v")), WriteStamp::new(1))
                .await
                .unwrap();
            let snap = table.read_quorum(client, &key).await.unwrap();
            assert_eq!(snap.value, Some(b("v")), "{key}");
        }
    });
    // Each key has exactly 3 replicas on 3 distinct sites.
    for i in 0..30 {
        let key = format!("key-{i}");
        let replicas = table2.placement().replicas_of(&key);
        assert_eq!(replicas.len(), 3);
        let sites: std::collections::HashSet<usize> = replicas.iter().map(|r| r % 3).collect();
        assert_eq!(sites.len(), 3, "{key} must span all sites");
    }
}

#[test]
fn windowed_multi_put_overlaps_quorum_round_trips() {
    // 16 writes to the same key with a window of 8 must take far fewer
    // than 16 sequential quorum RTTs (~54ms each on 1Us): the window keeps
    // 8 writes in flight at once.
    let f = fixture(LatencyProfile::one_us());
    let (table, client, sim) = (f.table.clone(), f.clients[0], f.sim.clone());
    let elapsed = f.sim.block_on(async move {
        let items: Vec<_> = (0..16u64)
            .map(|i| {
                (
                    "k".to_string(),
                    Put::value(Bytes::from(format!("v{i}"))),
                    WriteStamp::new(i + 1),
                )
            })
            .collect();
        let t0 = sim.now();
        table.write_quorum_many(client, items, 8).await.unwrap();
        sim.now() - t0
    });
    let sequential = SimDuration::from_millis(16 * 50);
    assert!(
        elapsed < sequential / 3,
        "windowed writes took {elapsed}, not far below {sequential}"
    );
    // Last-stamp-wins: the final value is the highest-stamped write.
    let snap = f.sim.block_on({
        let table = f.table.clone();
        let client = f.clients[0];
        async move { table.read_quorum(client, "k").await.unwrap() }
    });
    assert_eq!(snap.value, Some(Bytes::from("v15".to_string())));
}

#[test]
fn windowed_multi_put_reports_the_first_error_after_draining() {
    let f = fixture(LatencyProfile::one_us());
    let (table, client, net) = (f.table.clone(), f.clients[0], f.net.clone());
    // Two replicas down: no quorum anywhere.
    net.set_node_up(f.store_nodes[1], false);
    net.set_node_up(f.store_nodes[2], false);
    f.sim.block_on(async move {
        let items = vec![
            ("k".to_string(), Put::value(b("a")), WriteStamp::new(1)),
            ("k".to_string(), Put::value(b("b")), WriteStamp::new(2)),
        ];
        let err = table.write_quorum_many(client, items, 4).await.unwrap_err();
        assert_eq!(err, StoreError::Unavailable);
    });
}
