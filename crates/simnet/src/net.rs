//! The simulated wide-area network: propagation delay, per-node service
//! queues, message loss, partitions, and crash injection.
//!
//! Nodes are registered at a [`SiteId`]; the one-way propagation delay
//! between two nodes is half the site-pair RTT of the active
//! [`LatencyProfile`]. On top of propagation the model charges *service
//! time* — a fixed per-message CPU cost plus a bandwidth-proportional cost —
//! serialized through a FIFO queue at both the sender and the receiver.
//! Service queues are what produce saturation and the consensus-leader
//! queueing effects the paper observes in Fig. 6: a ZooKeeper-style leader
//! funnels every proposal through one node's queue, while quorum writes
//! spread coordination across replicas.
//!
//! Failure injection:
//! * [`Network::set_link`] / [`Network::partition_site`] — drop traffic on
//!   selected node pairs (network partition),
//! * [`Network::set_link_one_way`] / [`Network::partition_direction`] —
//!   *asymmetric* cuts: one direction of a link (or site pair) drops
//!   while the reverse keeps flowing,
//! * [`Network::set_node_up`] — crash / recover a node,
//! * [`NetConfig::loss`] — iid message loss, adjustable at runtime with
//!   [`Network::set_loss`] (loss bursts),
//! * [`Network::set_service_multiplier`] — *gray failure*: a node that is
//!   up and reachable but services every message `k×` slower.
//!
//! A transmission that is lost, partitioned, or addressed to/from a dead
//! node **never completes** — exactly what the sender of a lost packet
//! observes. Callers recover with [`crate::combinators::timeout`].

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use music_telemetry::{DropReason, EventKind, Recorder, Scope};

use crate::combinators::never;
use crate::executor::Sim;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LatencyProfile, SiteId};

/// Identifier of a simulated node (replica, server, or client endpoint).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Tunable cost model of the network.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct NetConfig {
    /// Fixed CPU/service cost charged per message at sender and receiver.
    pub service_fixed: SimDuration,
    /// Node NIC/processing bandwidth, bytes per second, for the
    /// size-proportional part of the service cost.
    pub bandwidth_bytes_per_sec: u64,
    /// Independent probability that any message is lost in flight.
    pub loss: f64,
    /// Propagation jitter: each delay is multiplied by a uniform factor in
    /// `[1, 1 + jitter_frac]`.
    pub jitter_frac: f64,
}

impl Default for NetConfig {
    /// Defaults calibrated so a 3-node cluster sustains roughly the eventual
    /// write throughput Datastax reports for Cassandra (≈40 K op/s, §VIII-b):
    /// a 20 µs fixed cost and 1 GB/s of per-node bandwidth.
    fn default() -> Self {
        NetConfig {
            service_fixed: SimDuration::from_micros(20),
            bandwidth_bytes_per_sec: 1_000_000_000,
            loss: 0.0,
            jitter_frac: 0.0,
        }
    }
}

#[derive(Debug)]
struct NodeState {
    site: SiteId,
    up: bool,
    busy_until: SimTime,
    /// Gray-failure dial: every service reservation at this node is
    /// stretched by this factor (1.0 = healthy).
    service_mult: f64,
}

#[derive(Debug, Default)]
struct NetStats {
    messages: u64,
    bytes: u64,
    dropped: u64,
}

/// Per-directed-link traffic statistics (always collected; cheap counters).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages that entered the link.
    pub sent: u64,
    /// Messages fully serviced at the receiver.
    pub delivered: u64,
    /// Messages lost (loss, partition, or dead endpoint).
    pub dropped: u64,
    /// Payload bytes that entered the link.
    pub bytes: u64,
}

struct Inner {
    sim: Sim,
    profile: LatencyProfile,
    cfg: NetConfig,
    /// Live loss probability — starts at `cfg.loss`, adjustable at runtime
    /// for loss bursts.
    loss: std::cell::Cell<f64>,
    nodes: RefCell<Vec<NodeState>>,
    /// Ordered pairs (from, to) whose traffic is dropped.
    cut_links: RefCell<HashSet<(NodeId, NodeId)>>,
    rng: RefCell<SmallRng>,
    stats: RefCell<NetStats>,
    link_stats: RefCell<BTreeMap<(NodeId, NodeId), LinkStats>>,
    recorder: RefCell<Recorder>,
}

/// Handle to the simulated network. Cheap to clone.
#[derive(Clone)]
pub struct Network {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("profile", &self.inner.profile.name())
            .field("nodes", &self.inner.nodes.borrow().len())
            .finish()
    }
}

impl Network {
    /// Creates a network over `profile` with the given cost model and RNG
    /// seed (loss and jitter are deterministic per seed).
    pub fn new(sim: Sim, profile: LatencyProfile, cfg: NetConfig, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.loss),
            "loss must be a probability"
        );
        assert!(cfg.jitter_frac >= 0.0, "jitter must be non-negative");
        assert!(
            cfg.bandwidth_bytes_per_sec > 0,
            "bandwidth must be positive"
        );
        Network {
            inner: Rc::new(Inner {
                sim,
                profile,
                loss: std::cell::Cell::new(cfg.loss),
                cfg,
                nodes: RefCell::new(Vec::new()),
                cut_links: RefCell::new(HashSet::new()),
                rng: RefCell::new(SmallRng::seed_from_u64(seed)),
                stats: RefCell::new(NetStats::default()),
                link_stats: RefCell::new(BTreeMap::new()),
                recorder: RefCell::new(Recorder::off()),
            }),
        }
    }

    /// The simulation this network runs on.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The active latency profile.
    pub fn profile(&self) -> &LatencyProfile {
        &self.inner.profile
    }

    /// Registers a node at `site` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the latency profile.
    pub fn add_node(&self, site: SiteId) -> NodeId {
        assert!(
            (site.0 as usize) < self.inner.profile.site_count(),
            "site {site} not in profile {}",
            self.inner.profile.name()
        );
        let mut nodes = self.inner.nodes.borrow_mut();
        nodes.push(NodeState {
            site,
            up: true,
            busy_until: SimTime::ZERO,
            service_mult: 1.0,
        });
        NodeId(nodes.len() as u32 - 1)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// The site a node lives at.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.inner.nodes.borrow()[node.0 as usize].site
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.inner.nodes.borrow()[node.0 as usize].up
    }

    /// Crashes (`false`) or recovers (`true`) a node. While down, all
    /// traffic to or from the node hangs.
    pub fn set_node_up(&self, node: NodeId, up: bool) {
        self.inner.nodes.borrow_mut()[node.0 as usize].up = up;
    }

    /// Cuts (`connected = false`) or heals the *bidirectional* link between
    /// two nodes.
    pub fn set_link(&self, a: NodeId, b: NodeId, connected: bool) {
        let mut cut = self.inner.cut_links.borrow_mut();
        if connected {
            cut.remove(&(a, b));
            cut.remove(&(b, a));
        } else {
            cut.insert((a, b));
            cut.insert((b, a));
        }
    }

    /// Cuts (`connected = false`) or heals only the `from → to` direction
    /// of a link. The reverse direction is untouched — the asymmetric
    /// (gray) partition in which A still hears B but B no longer hears A.
    pub fn set_link_one_way(&self, from: NodeId, to: NodeId, connected: bool) {
        let mut cut = self.inner.cut_links.borrow_mut();
        if connected {
            cut.remove(&(from, to));
        } else {
            cut.insert((from, to));
        }
    }

    /// Cuts (or heals) every `from-site → to-site` directed link: traffic
    /// from `from` never reaches `to`, while `to → from` keeps flowing.
    /// Intra-site traffic is untouched.
    pub fn partition_direction(&self, from: SiteId, to: SiteId, connected: bool) {
        let nodes = self.inner.nodes.borrow();
        let senders: Vec<NodeId> = (0..nodes.len() as u32)
            .map(NodeId)
            .filter(|n| nodes[n.0 as usize].site == from)
            .collect();
        let receivers: Vec<NodeId> = (0..nodes.len() as u32)
            .map(NodeId)
            .filter(|n| nodes[n.0 as usize].site == to)
            .collect();
        drop(nodes);
        for &s in &senders {
            for &r in &receivers {
                self.set_link_one_way(s, r, connected);
            }
        }
    }

    /// Sets a node's gray-failure service-time multiplier: every message
    /// serviced at `node` (sent or received) takes `mult ×` its healthy
    /// cost. `1.0` restores health; values above 1 model a slow-but-alive
    /// node — degraded disks, CPU steal, GC stalls — that no liveness
    /// check catches.
    ///
    /// # Panics
    ///
    /// Panics if `mult` is not finite and positive.
    pub fn set_service_multiplier(&self, node: NodeId, mult: f64) {
        assert!(
            mult.is_finite() && mult > 0.0,
            "service multiplier must be finite and positive"
        );
        self.inner.nodes.borrow_mut()[node.0 as usize].service_mult = mult;
    }

    /// The node's current gray-failure multiplier (1.0 = healthy).
    pub fn service_multiplier(&self, node: NodeId) -> f64 {
        self.inner.nodes.borrow()[node.0 as usize].service_mult
    }

    /// Changes the iid message-loss probability at runtime (loss bursts).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a probability.
    pub fn set_loss(&self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.inner.loss.set(loss);
    }

    /// The current iid message-loss probability.
    pub fn loss(&self) -> f64 {
        self.inner.loss.get()
    }

    /// Partitions an entire site from the rest of the network (or heals it
    /// when `isolated = false`). Intra-site traffic keeps flowing.
    pub fn partition_site(&self, site: SiteId, isolated: bool) {
        let nodes = self.inner.nodes.borrow();
        let members: Vec<NodeId> = (0..nodes.len() as u32)
            .map(NodeId)
            .filter(|n| nodes[n.0 as usize].site == site)
            .collect();
        let others: Vec<NodeId> = (0..nodes.len() as u32)
            .map(NodeId)
            .filter(|n| nodes[n.0 as usize].site != site)
            .collect();
        drop(nodes);
        for &m in &members {
            for &o in &others {
                self.set_link(m, o, !isolated);
            }
        }
    }

    /// One-way RTT-derived propagation delay between two nodes (no jitter,
    /// no queueing) — useful for tests and cost analysis.
    pub fn propagation(&self, from: NodeId, to: NodeId) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let nodes = self.inner.nodes.borrow();
        let a = nodes[from.0 as usize].site.0 as usize;
        let b = nodes[to.0 as usize].site.0 as usize;
        self.inner.profile.one_way(a, b)
    }

    /// Total messages sent, bytes carried, and messages dropped so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        let s = self.inner.stats.borrow();
        (s.messages, s.bytes, s.dropped)
    }

    /// Traffic statistics of one directed link (zeros if never used).
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> LinkStats {
        self.inner
            .link_stats
            .borrow()
            .get(&(from, to))
            .copied()
            .unwrap_or_default()
    }

    /// Statistics of every directed link that carried traffic, sorted by
    /// `(from, to)` — a deterministic snapshot.
    pub fn all_link_stats(&self) -> Vec<((NodeId, NodeId), LinkStats)> {
        self.inner
            .link_stats
            .borrow()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Installs a telemetry recorder; all subsequent traffic emits events
    /// and counters into it. The default recorder is off.
    pub fn set_recorder(&self, recorder: Recorder) {
        *self.inner.recorder.borrow_mut() = recorder;
    }

    /// The currently installed telemetry recorder (clone of the handle).
    pub fn recorder(&self) -> Recorder {
        self.inner.recorder.borrow().clone()
    }

    fn link(&self, from: NodeId, to: NodeId) -> std::cell::RefMut<'_, LinkStats> {
        std::cell::RefMut::map(self.inner.link_stats.borrow_mut(), |m| {
            m.entry((from, to)).or_default()
        })
    }

    fn service_time(&self, bytes: usize) -> SimDuration {
        let bw = self.inner.cfg.bandwidth_bytes_per_sec;
        let tx_us = (bytes as u64).saturating_mul(1_000_000) / bw;
        self.inner.cfg.service_fixed + SimDuration::from_micros(tx_us)
    }

    /// Reserves service at `node`'s FIFO queue starting no earlier than
    /// `earliest`, returning the completion instant. A gray-failed node
    /// stretches the service time by its multiplier.
    fn reserve(&self, node: NodeId, earliest: SimTime, service: SimDuration) -> SimTime {
        let (start, done) = {
            let mut nodes = self.inner.nodes.borrow_mut();
            let st = &mut nodes[node.0 as usize];
            let service = if st.service_mult != 1.0 {
                service.mul_f64(st.service_mult)
            } else {
                service
            };
            let start = earliest.max(st.busy_until);
            let done = start + service;
            st.busy_until = done;
            (start, done)
        };
        // Service-queue depth, expressed as the backlog this message waited
        // behind (high-water mark per node).
        let rec = self.inner.recorder.borrow();
        if rec.is_on() {
            rec.gauge_max(
                Scope::Node(node.0),
                "svc_backlog_us_max",
                (start - earliest).as_micros(),
            );
        }
        done
    }

    /// Transmits `bytes` from `from` to `to`, resolving when the message has
    /// been fully serviced at the receiver (i.e. the receiver may now act on
    /// it).
    ///
    /// Never resolves if the message is lost, the link is cut, or either
    /// endpoint is down — use [`crate::combinators::timeout`] on top.
    pub async fn transmit(&self, from: NodeId, to: NodeId, bytes: usize) {
        {
            let mut stats = self.inner.stats.borrow_mut();
            stats.messages += 1;
            stats.bytes += bytes as u64;
        }
        {
            let mut link = self.link(from, to);
            link.sent += 1;
            link.bytes += bytes as u64;
        }
        self.telemetry_send(from, to, bytes);
        let lost = {
            let loss = self.inner.loss.get();
            let nodes = self.inner.nodes.borrow();
            let dead = !nodes[from.0 as usize].up || !nodes[to.0 as usize].up;
            let cut = self.inner.cut_links.borrow().contains(&(from, to));
            let unlucky = loss > 0.0 && self.inner.rng.borrow_mut().gen_bool(loss);
            if dead {
                Some(DropReason::EndpointDown)
            } else if cut {
                Some(DropReason::Cut)
            } else if unlucky {
                Some(DropReason::Loss)
            } else {
                None
            }
        };
        if let Some(reason) = lost {
            self.inner.stats.borrow_mut().dropped += 1;
            self.link(from, to).dropped += 1;
            self.telemetry_drop(from, to, bytes, reason);
            return never().await;
        }

        let svc = self.service_time(bytes);
        // Sender serializes its own transmissions (NIC + syscall cost).
        // Reservations are always made at the *current* instant so that a
        // slow message can never retroactively delay earlier traffic.
        if from != to {
            let tx_done = self.reserve(from, self.inner.sim.now(), svc);
            self.inner.sim.sleep_until(tx_done).await;
        }
        let mut prop = self.propagation(from, to);
        if self.inner.cfg.jitter_frac > 0.0 {
            let f: f64 = self
                .inner
                .rng
                .borrow_mut()
                .gen_range(0.0..=self.inner.cfg.jitter_frac);
            prop = prop.mul_f64(1.0 + f);
        }
        self.inner.sim.sleep(prop).await;
        // Receiver services messages in FIFO arrival order.
        let rx_done = self.reserve(to, self.inner.sim.now(), svc);
        self.inner.sim.sleep_until(rx_done).await;
        // If the receiver crashed while the message was in flight, it never
        // processes it.
        if !self.is_up(to) {
            self.inner.stats.borrow_mut().dropped += 1;
            self.link(from, to).dropped += 1;
            self.telemetry_drop(from, to, bytes, DropReason::ReceiverCrashed);
            return never().await;
        }
        self.link(from, to).delivered += 1;
        self.telemetry_deliver(from, to, bytes);
    }

    fn telemetry_send(&self, from: NodeId, to: NodeId, bytes: usize) {
        let rec = self.inner.recorder.borrow();
        if !rec.is_on() {
            return;
        }
        rec.count(Scope::Node(from.0), "msgs_sent", 1);
        rec.count(Scope::Node(from.0), "bytes_sent", bytes as u64);
        rec.count(Scope::Site(self.site_of(from).0), "msgs_sent", 1);
        rec.count(Scope::Link(from.0, to.0), "msgs_sent", 1);
        rec.count(Scope::Link(from.0, to.0), "bytes_sent", bytes as u64);
        if rec.is_tracing() {
            rec.record(
                self.inner.sim.now().as_micros(),
                self.inner.sim.trace(),
                from.0,
                EventKind::MsgSend {
                    from: from.0,
                    to: to.0,
                    bytes: bytes as u64,
                },
            );
        }
    }

    fn telemetry_deliver(&self, from: NodeId, to: NodeId, bytes: usize) {
        let rec = self.inner.recorder.borrow();
        if !rec.is_on() {
            return;
        }
        rec.count(Scope::Node(to.0), "msgs_delivered", 1);
        rec.count(Scope::Site(self.site_of(to).0), "msgs_delivered", 1);
        rec.count(Scope::Link(from.0, to.0), "msgs_delivered", 1);
        if rec.is_tracing() {
            rec.record(
                self.inner.sim.now().as_micros(),
                self.inner.sim.trace(),
                to.0,
                EventKind::MsgDeliver {
                    from: from.0,
                    to: to.0,
                    bytes: bytes as u64,
                },
            );
        }
    }

    fn telemetry_drop(&self, from: NodeId, to: NodeId, bytes: usize, reason: DropReason) {
        let rec = self.inner.recorder.borrow();
        if !rec.is_on() {
            return;
        }
        rec.count(Scope::Node(from.0), "msgs_dropped", 1);
        rec.count(Scope::Link(from.0, to.0), "msgs_dropped", 1);
        if rec.is_tracing() {
            rec.record(
                self.inner.sim.now().as_micros(),
                self.inner.sim.trace(),
                from.0,
                EventKind::MsgDrop {
                    from: from.0,
                    to: to.0,
                    bytes: bytes as u64,
                    reason,
                },
            );
        }
    }

    /// Round-trip helper: ship a request, run the (synchronous) server-side
    /// `handler` at the receiver, ship the response back. Resolves with the
    /// handler's output once the response has been serviced at `from`.
    ///
    /// The handler runs at the virtual instant the request is delivered; its
    /// returned tuple is `(response, response_bytes)`.
    pub async fn rpc<R>(
        &self,
        from: NodeId,
        to: NodeId,
        req_bytes: usize,
        handler: impl FnOnce() -> (R, usize),
    ) -> R {
        self.transmit(from, to, req_bytes).await;
        let (resp, resp_bytes) = handler();
        self.transmit(to, from, resp_bytes).await;
        resp
    }

    /// [`Network::rpc`] with bounded retransmission: each attempt is given
    /// `retry_after` to complete; lost attempts are re-sent up to
    /// `attempts` times. Models TCP retransmission plus hinted-handoff
    /// style redelivery, so transient partitions delay (rather than
    /// permanently drop) replica updates.
    ///
    /// The handler may run more than once (a response can be lost after
    /// the request was served), so it must be idempotent — true for all
    /// stamped LWW applications and Paxos message handlers.
    ///
    /// Never resolves if every attempt is lost; pair with a caller-side
    /// timeout when that matters.
    pub async fn rpc_reliable<R>(
        &self,
        from: NodeId,
        to: NodeId,
        req_bytes: usize,
        handler: impl Fn() -> (R, usize),
        attempts: u32,
        retry_after: SimDuration,
    ) -> R {
        for attempt in 0..attempts.max(1) {
            let last = attempt + 1 == attempts.max(1);
            let fut = self.rpc(from, to, req_bytes, &handler);
            if last {
                return fut.await;
            }
            match crate::combinators::timeout(&self.inner.sim, retry_after, fut).await {
                Ok(r) => return r,
                Err(_) => {
                    let rec = self.inner.recorder.borrow();
                    if rec.is_on() {
                        rec.count(Scope::Node(from.0), "retransmits", 1);
                        if rec.is_tracing() {
                            rec.record(
                                self.inner.sim.now().as_micros(),
                                self.inner.sim.trace(),
                                from.0,
                                EventKind::Retransmit {
                                    from: from.0,
                                    to: to.0,
                                    attempt,
                                },
                            );
                        }
                    }
                    continue;
                }
            }
        }
        unreachable!("loop returns on the last attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::{timeout, Elapsed};

    fn quiet_cfg() -> NetConfig {
        NetConfig {
            service_fixed: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX / 2,
            loss: 0.0,
            jitter_frac: 0.0,
        }
    }

    fn three_site_net(cfg: NetConfig) -> (Sim, Network, Vec<NodeId>) {
        let sim = Sim::new();
        let net = Network::new(sim.clone(), LatencyProfile::one_us(), cfg, 42);
        let nodes = (0..3).map(|s| net.add_node(SiteId(s))).collect();
        (sim, net, nodes)
    }

    #[test]
    fn transmit_takes_one_way_latency() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, c) = (n[0], n[2]);
        let t = sim.block_on({
            let net = net.clone();
            async move {
                net.transmit(a, c, 10).await;
                net.sim().now()
            }
        });
        // Ohio -> Oregon one-way = 72.14/2 ms.
        assert_eq!(t.as_micros(), 36_070);
    }

    #[test]
    fn rpc_takes_full_rtt() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        let t = sim.block_on({
            let net = net.clone();
            async move {
                let v = net.rpc(a, b, 10, || (5u32, 10)).await;
                assert_eq!(v, 5);
                net.sim().now()
            }
        });
        assert_eq!(t.as_micros(), 53_790);
    }

    #[test]
    fn self_transmit_is_free_of_propagation() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let a = n[0];
        let t = sim.block_on({
            let net = net.clone();
            async move {
                net.transmit(a, a, 10).await;
                net.sim().now()
            }
        });
        assert_eq!(t.as_micros(), 0);
    }

    #[test]
    fn service_queue_serializes_receiver() {
        let mut cfg = quiet_cfg();
        cfg.service_fixed = SimDuration::from_micros(100);
        let sim = Sim::new();
        let net = Network::new(sim.clone(), LatencyProfile::one_us(), cfg, 42);
        // Two senders co-located at site 0: their messages arrive at the
        // target simultaneously and must be serviced serially.
        let a = net.add_node(SiteId(0));
        let b = net.add_node(SiteId(0));
        let target = net.add_node(SiteId(2));
        // Two senders hit the same receiver at the same instant; receiver
        // services serially, so completions are 100us apart.
        let h1 = sim.spawn({
            let net = net.clone();
            async move {
                net.transmit(a, target, 0).await;
                net.sim().now()
            }
        });
        let h2 = sim.spawn({
            let net = net.clone();
            async move {
                net.transmit(b, target, 0).await;
                net.sim().now()
            }
        });
        sim.run();
        let t1 = h1.try_result().unwrap();
        let t2 = h2.try_result().unwrap();
        let (first, second) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
        assert_eq!((second - first).as_micros(), 100);
    }

    #[test]
    fn bandwidth_charges_large_payloads() {
        let mut cfg = quiet_cfg();
        cfg.bandwidth_bytes_per_sec = 1_000_000; // 1 MB/s
        let (sim, net, n) = three_site_net(cfg);
        let (a, b) = (n[0], n[1]);
        let t = sim.block_on({
            let net = net.clone();
            async move {
                net.transmit(a, b, 500_000).await; // 0.5s at sender + 0.5s at receiver
                net.sim().now()
            }
        });
        // 0.5s tx + 26.895ms propagation + 0.5s rx
        assert_eq!(t.as_micros(), 500_000 + 26_895 + 500_000);
    }

    #[test]
    fn cut_link_hangs_transmissions() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        net.set_link(a, b, false);
        let out = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                timeout(&sim, SimDuration::from_millis(500), net.transmit(a, b, 1)).await
            }
        });
        assert_eq!(out, Err(Elapsed));
        // Heal and retry.
        net.set_link(a, b, true);
        let out = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                timeout(&sim, SimDuration::from_millis(500), net.transmit(a, b, 1)).await
            }
        });
        assert_eq!(out, Ok(()));
    }

    #[test]
    fn dead_node_receives_nothing() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        net.set_node_up(b, false);
        let out = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                timeout(&sim, SimDuration::from_millis(500), net.transmit(a, b, 1)).await
            }
        });
        assert_eq!(out, Err(Elapsed));
    }

    #[test]
    fn partition_site_cuts_wan_not_lan() {
        let sim = Sim::new();
        let net = Network::new(sim.clone(), LatencyProfile::one_us(), quiet_cfg(), 1);
        let a1 = net.add_node(SiteId(0));
        let a2 = net.add_node(SiteId(0));
        let b = net.add_node(SiteId(1));
        net.partition_site(SiteId(0), true);
        let (lan, wan) = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                let lan =
                    timeout(&sim, SimDuration::from_millis(100), net.transmit(a1, a2, 1)).await;
                let wan =
                    timeout(&sim, SimDuration::from_millis(100), net.transmit(a1, b, 1)).await;
                (lan, wan)
            }
        });
        assert_eq!(lan, Ok(()));
        assert_eq!(wan, Err(Elapsed));
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed: u64| -> u64 {
            let sim = Sim::new();
            let mut cfg = quiet_cfg();
            cfg.loss = 0.5;
            let net = Network::new(sim.clone(), LatencyProfile::one_l(), cfg, seed);
            let a = net.add_node(SiteId(0));
            let b = net.add_node(SiteId(1));
            for _ in 0..100 {
                let net2 = net.clone();
                sim.spawn(async move {
                    net2.transmit(a, b, 1).await;
                });
            }
            sim.run();
            net.stats().2
        };
        assert_eq!(run(7), run(7));
        // At 50% loss the count is binomially concentrated around 50.
        for seed in [7, 8, 9] {
            let dropped = run(seed);
            assert!(
                (20..=80).contains(&dropped),
                "seed {seed}: {dropped}/100 dropped"
            );
        }
    }

    #[test]
    fn link_stats_track_sent_delivered_bytes() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        sim.block_on({
            let net = net.clone();
            async move {
                net.transmit(a, b, 100).await;
                net.transmit(a, b, 50).await;
                net.transmit(b, a, 10).await;
            }
        });
        let ab = net.link_stats(a, b);
        assert_eq!(ab.sent, 2);
        assert_eq!(ab.delivered, 2);
        assert_eq!(ab.dropped, 0);
        assert_eq!(ab.bytes, 150);
        let ba = net.link_stats(b, a);
        assert_eq!((ba.sent, ba.delivered, ba.bytes), (1, 1, 10));
        // Unused links report zeros; the snapshot lists only used links.
        assert_eq!(net.link_stats(a, n[2]), LinkStats::default());
        let all = net.all_link_stats();
        assert_eq!(all.len(), 2);
        assert!(all[0].0 < all[1].0, "snapshot sorted by (from, to)");
    }

    #[test]
    fn link_stats_count_drops_per_link() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b, c) = (n[0], n[1], n[2]);
        net.set_link(a, b, false);
        sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                let _ = timeout(&sim, SimDuration::from_millis(10), net.transmit(a, b, 5)).await;
                let _ = timeout(&sim, SimDuration::from_secs(1), net.transmit(a, c, 5)).await;
            }
        });
        let ab = net.link_stats(a, b);
        assert_eq!((ab.sent, ab.delivered, ab.dropped), (1, 0, 1));
        let ac = net.link_stats(a, c);
        assert_eq!((ac.sent, ac.delivered, ac.dropped), (1, 1, 0));
        // The aggregate counters agree with the per-link breakdown.
        let (messages, _, dropped) = net.stats();
        assert_eq!(messages, 2);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn recorder_captures_net_events_and_counters() {
        use music_telemetry::{EventKind, Recorder, Scope};
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        let rec = Recorder::tracing();
        net.set_recorder(rec.clone());
        sim.block_on({
            let net = net.clone();
            async move {
                net.transmit(a, b, 64).await;
            }
        });
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].kind,
            EventKind::MsgSend { bytes: 64, .. }
        ));
        assert!(matches!(events[1].kind, EventKind::MsgDeliver { .. }));
        assert!(events[0].seq < events[1].seq);
        assert_eq!(events[1].at_us, 26_895, "delivery at one-way latency");
        let snap = rec.metrics();
        assert_eq!(snap.get(Scope::Node(a.0), "msgs_sent"), 1);
        assert_eq!(snap.get(Scope::Link(a.0, b.0), "bytes_sent"), 64);
        assert_eq!(snap.get(Scope::Node(b.0), "msgs_delivered"), 1);
    }

    #[test]
    #[should_panic(expected = "not in profile")]
    fn adding_node_at_unknown_site_panics() {
        let sim = Sim::new();
        let net = Network::new(sim, LatencyProfile::one_l(), NetConfig::default(), 0);
        net.add_node(SiteId(9));
    }

    #[test]
    fn net_config_and_times_are_serde_capable() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<NetConfig>();
        assert_serde::<SimTime>();
        assert_serde::<SimDuration>();
    }

    #[test]
    fn rpc_reliable_retransmits_through_a_transient_cut() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        net.set_link(a, b, false);
        // Heal the link after 3 seconds (within the retry budget).
        {
            let net2 = net.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_secs(3)).await;
                net2.set_link(a, b, true);
            });
        }
        let calls = Rc::new(std::cell::Cell::new(0u32));
        let calls2 = Rc::clone(&calls);
        let out = sim.block_on({
            let net = net.clone();
            async move {
                net.rpc_reliable(
                    a,
                    b,
                    16,
                    move || {
                        calls2.set(calls2.get() + 1);
                        (7u32, 16)
                    },
                    10,
                    SimDuration::from_secs(2),
                )
                .await
            }
        });
        assert_eq!(out, 7);
        assert_eq!(calls.get(), 1, "handler ran exactly once after healing");
    }

    #[test]
    fn one_way_cut_is_asymmetric() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        net.set_link_one_way(a, b, false);
        let (fwd, rev) = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                let fwd = timeout(&sim, SimDuration::from_millis(500), net.transmit(a, b, 1)).await;
                let rev = timeout(&sim, SimDuration::from_millis(500), net.transmit(b, a, 1)).await;
                (fwd, rev)
            }
        });
        assert_eq!(fwd, Err(Elapsed), "cut direction drops");
        assert_eq!(rev, Ok(()), "reverse direction still flows");
        // Healing the direction restores it.
        net.set_link_one_way(a, b, true);
        let fwd = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                timeout(&sim, SimDuration::from_millis(500), net.transmit(a, b, 1)).await
            }
        });
        assert_eq!(fwd, Ok(()));
    }

    #[test]
    fn bidirectional_heal_clears_one_way_cuts() {
        let (_sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        net.set_link_one_way(a, b, false);
        net.set_link(a, b, true); // full heal covers the directed cut
        assert!(!net.inner.cut_links.borrow().contains(&(a, b)));
    }

    #[test]
    fn partition_direction_cuts_site_pair_one_way() {
        let sim = Sim::new();
        let net = Network::new(sim.clone(), LatencyProfile::one_us(), quiet_cfg(), 1);
        let a1 = net.add_node(SiteId(0));
        let a2 = net.add_node(SiteId(0));
        let b = net.add_node(SiteId(1));
        let c = net.add_node(SiteId(2));
        net.partition_direction(SiteId(0), SiteId(1), false);
        let (fwd1, fwd2, rev, other) = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                let t = SimDuration::from_millis(500);
                let fwd1 = timeout(&sim, t, net.transmit(a1, b, 1)).await;
                let fwd2 = timeout(&sim, t, net.transmit(a2, b, 1)).await;
                let rev = timeout(&sim, t, net.transmit(b, a1, 1)).await;
                let other = timeout(&sim, t, net.transmit(a1, c, 1)).await;
                (fwd1, fwd2, rev, other)
            }
        });
        assert_eq!((fwd1, fwd2), (Err(Elapsed), Err(Elapsed)));
        assert_eq!(rev, Ok(()), "reverse site direction flows");
        assert_eq!(other, Ok(()), "unrelated site pair flows");
        net.partition_direction(SiteId(0), SiteId(1), true);
        let fwd = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                timeout(&sim, SimDuration::from_millis(500), net.transmit(a1, b, 1)).await
            }
        });
        assert_eq!(fwd, Ok(()));
    }

    #[test]
    fn gray_failure_stretches_service_time() {
        let mut cfg = quiet_cfg();
        cfg.service_fixed = SimDuration::from_micros(100);
        let sim = Sim::new();
        let net = Network::new(sim.clone(), LatencyProfile::one_us(), cfg, 42);
        let a = net.add_node(SiteId(0));
        let b = net.add_node(SiteId(1));
        assert_eq!(net.service_multiplier(b), 1.0);
        net.set_service_multiplier(b, 10.0);
        let t = sim.block_on({
            let net = net.clone();
            async move {
                net.transmit(a, b, 0).await;
                net.sim().now()
            }
        });
        // 100us tx at the healthy sender + one-way 26.895ms + 10×100us rx
        // at the gray receiver.
        assert_eq!(t.as_micros(), 100 + 26_895 + 1_000);
        // Healing restores the healthy cost.
        net.set_service_multiplier(b, 1.0);
        let t0 = sim.now();
        let t1 = sim.block_on({
            let net = net.clone();
            async move {
                net.transmit(a, b, 0).await;
                net.sim().now()
            }
        });
        assert_eq!((t1 - t0).as_micros(), 100 + 26_895 + 100);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_service_multiplier_panics() {
        let (_sim, net, n) = three_site_net(quiet_cfg());
        net.set_service_multiplier(n[0], 0.0);
    }

    #[test]
    fn loss_bursts_apply_and_heal() {
        let sim = Sim::new();
        let net = Network::new(sim.clone(), LatencyProfile::one_l(), quiet_cfg(), 7);
        let a = net.add_node(SiteId(0));
        let b = net.add_node(SiteId(1));
        assert_eq!(net.loss(), 0.0);
        net.set_loss(1.0);
        let during = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                timeout(&sim, SimDuration::from_millis(100), net.transmit(a, b, 1)).await
            }
        });
        assert_eq!(during, Err(Elapsed), "burst drops everything");
        net.set_loss(0.0);
        let after = sim.block_on({
            let net = net.clone();
            async move {
                let sim = net.sim().clone();
                timeout(&sim, SimDuration::from_millis(100), net.transmit(a, b, 1)).await
            }
        });
        assert_eq!(after, Ok(()), "healed burst delivers again");
    }

    #[test]
    fn rpc_reliable_gives_up_after_the_attempt_budget() {
        let (sim, net, n) = three_site_net(quiet_cfg());
        let (a, b) = (n[0], n[1]);
        net.set_link(a, b, false); // never healed
        let out = sim.block_on({
            let net = net.clone();
            let sim2 = sim.clone();
            async move {
                timeout(
                    &sim2,
                    SimDuration::from_secs(30),
                    net.rpc_reliable(a, b, 16, || ((), 16), 3, SimDuration::from_secs(2)),
                )
                .await
            }
        });
        // 3 attempts × 2s, then the last attempt hangs: outer timeout fires.
        assert_eq!(out, Err(Elapsed));
    }
}
