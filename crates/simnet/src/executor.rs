//! A deterministic, single-threaded, virtual-time async executor.
//!
//! Every protocol in this workspace (quorum stores, Paxos, Zab, Raft, the
//! MUSIC layer itself) runs as ordinary `async` tasks on this executor.
//! Instead of wall-clock timers the executor keeps a virtual clock: when no
//! task is runnable it jumps the clock to the earliest pending timer. A
//! whole five-minute saturation experiment therefore executes in wall-clock
//! milliseconds, and — because scheduling is a pure function of spawn/wake
//! order and timer deadlines — two runs with the same seed are identical.
//!
//! # Examples
//!
//! ```
//! use music_simnet::executor::Sim;
//! use music_simnet::time::SimDuration;
//!
//! let sim = Sim::new();
//! let handle = sim.spawn({
//!     let sim = sim.clone();
//!     async move {
//!         sim.sleep(SimDuration::from_millis(10)).await;
//!         sim.now()
//!     }
//! });
//! sim.run();
//! assert_eq!(handle.try_result().unwrap().as_millis(), 10);
//! ```

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::clock::{DriftClock, DriftSpec};
use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task, used internally for wakeups.
type TaskId = usize;

/// The shared ready queue. It is `Send + Sync` only because `std::task::Waker`
/// demands it; the executor itself is strictly single-threaded.
type ReadyQueue = Arc<Mutex<VecDeque<TaskId>>>;

struct TaskWaker {
    id: TaskId,
    queued: AtomicBool,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::Relaxed) {
            self.ready.lock().push_back(self.id);
        }
    }
}

struct TaskSlot {
    future: RefCell<Pin<Box<dyn Future<Output = ()>>>>,
    waker_state: Arc<TaskWaker>,
    waker: Waker,
    /// Telemetry trace tag: saved across polls so a span id set inside a
    /// task survives its awaits, and inherited by tasks it spawns.
    trace_tag: Cell<u64>,
    /// Telemetry span tag (the *current phase span*, distinct from the
    /// trace): same save/restore discipline as `trace_tag`, so nested
    /// phase spans parent correctly even when concurrent critical
    /// sections interleave at await points.
    span_tag: Cell<u64>,
}

struct TimerEntry {
    deadline: SimTime,
    seq: u64,
    waker: Waker,
    /// Set when the owning `Sleep` is dropped before firing: the entry is
    /// discarded **without advancing the clock**. Without cancellation, a
    /// dropped timeout would still fast-forward virtual time at quiesce,
    /// corrupting every makespan measurement.
    cancelled: Rc<Cell<bool>>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct Inner {
    now: Cell<SimTime>,
    ready: ReadyQueue,
    tasks: RefCell<Vec<Option<Rc<TaskSlot>>>>,
    free: RefCell<Vec<TaskId>>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_seq: Cell<u64>,
    live: Cell<usize>,
    /// Trace tag of the code currently running (the polled task's tag, or
    /// the ambient tag between polls). Purely observational bookkeeping —
    /// it never influences scheduling.
    current_trace: Cell<u64>,
    /// Span tag of the code currently running (see `TaskSlot::span_tag`).
    current_span: Cell<u64>,
    /// Executor hot-path counters (see [`ExecutorProfile`]): pure `Cell`
    /// increments, so profiling never perturbs the schedule.
    profile: ProfileCells,
}

#[derive(Default)]
struct ProfileCells {
    tasks_spawned: Cell<u64>,
    task_polls: Cell<u64>,
    timers_set: Cell<u64>,
    timers_fired: Cell<u64>,
    timers_cancelled: Cell<u64>,
    max_ready_queue: Cell<u64>,
    max_timer_heap: Cell<u64>,
}

/// A snapshot of the executor's hot-path counters — the simulator's own
/// performance profile. Every field is a deterministic function of the
/// schedule, so profiles replay byte-identically for a fixed seed; pair
/// them with a wall-clock measurement around [`Sim::run`] to get
/// events-per-wall-second (the ROADMAP item 1 baseline).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutorProfile {
    /// Tasks ever spawned.
    pub tasks_spawned: u64,
    /// Future polls executed (the executor's unit of work).
    pub task_polls: u64,
    /// Timers registered.
    pub timers_set: u64,
    /// Timers that fired and advanced (or held) the clock.
    pub timers_fired: u64,
    /// Timers cancelled before firing (dropped `Sleep`s, timeout losers).
    pub timers_cancelled: u64,
    /// High-water mark of the ready queue (scheduler burst width).
    pub max_ready_queue: u64,
    /// High-water mark of the timer heap (pending-timeout pressure).
    pub max_timer_heap: u64,
}

impl ExecutorProfile {
    /// Total scheduler events (polls + timer fires) — the denominator of
    /// the simulator's events/sec figures.
    pub fn events(&self) -> u64 {
        self.task_polls + self.timers_fired
    }
}

/// Handle to the simulation runtime: clock, spawner, and run loop.
///
/// `Sim` is a cheap reference-counted handle; clone it freely into tasks.
///
/// A handle can optionally carry a **drift lens** ([`Sim::with_drift`]):
/// [`Sim::now`] through such a handle reads a node-local skewed clock while
/// scheduling, timers, and event delivery stay on true virtual time
/// ([`Sim::true_now`]) — the model of a fleet whose nodes' clocks drift.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
    /// Per-handle clock-skew lens; `None` reads true virtual time.
    skew: Option<Rc<DriftClock>>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now())
            .field("live_tasks", &self.inner.live.get())
            .finish()
    }
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates a fresh simulation with the clock at [`SimTime::ZERO`] and no
    /// tasks.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(SimTime::ZERO),
                ready: Arc::new(Mutex::new(VecDeque::new())),
                tasks: RefCell::new(Vec::new()),
                free: RefCell::new(Vec::new()),
                timers: RefCell::new(BinaryHeap::new()),
                timer_seq: Cell::new(0),
                live: Cell::new(0),
                current_trace: Cell::new(0),
                current_span: Cell::new(0),
                profile: ProfileCells::default(),
            }),
            skew: None,
        }
    }

    /// Current time as this handle's node observes it: true virtual time,
    /// mapped through the drift lens when one is attached
    /// ([`Sim::with_drift`]).
    pub fn now(&self) -> SimTime {
        match &self.skew {
            Some(clock) => clock.local(self.inner.now.get()),
            None => self.inner.now.get(),
        }
    }

    /// Current **true** virtual time, ignoring any drift lens. This is the
    /// clock that orders event delivery and timer firing.
    pub fn true_now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// A handle onto the same simulation whose [`Sim::now`] reads a
    /// node-local clock skewed by `spec`. Scheduling is untouched: timers
    /// and tasks created through the skewed handle still run on true
    /// virtual time (interval timers behave like `CLOCK_MONOTONIC` — skew
    /// affects timestamps, not durations), so attaching drift never changes
    /// the event schedule and byte-replay is preserved.
    pub fn with_drift(&self, spec: DriftSpec) -> Sim {
        Sim {
            inner: Rc::clone(&self.inner),
            skew: Some(Rc::new(DriftClock::new(spec))),
        }
    }

    /// The drift spec of this handle's lens, if one is attached.
    pub fn drift_spec(&self) -> Option<&DriftSpec> {
        self.skew.as_ref().map(|c| c.spec())
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live.get()
    }

    /// The telemetry trace tag of the currently running task (`0` = no
    /// active span). Tags are inherited by spawned tasks and preserved
    /// across awaits, so a tag set at the start of a client operation is
    /// visible from every network transmission that operation causes.
    pub fn trace(&self) -> u64 {
        self.inner.current_trace.get()
    }

    /// Sets the current task's trace tag (see [`Sim::trace`]). Purely
    /// observational: scheduling, timers, and randomness are unaffected.
    pub fn set_trace(&self, tag: u64) {
        self.inner.current_trace.set(tag);
    }

    /// The phase-span tag of the currently running task (`0` = no open
    /// span). Distinct from [`Sim::trace`]: the trace names a whole
    /// client-visible operation, the span names the *currently open
    /// phase* within it. Inherited by spawned tasks and preserved across
    /// awaits, so instrumentation deep in the stack can parent its spans
    /// onto the caller's without threading ids through every signature.
    pub fn span(&self) -> u64 {
        self.inner.current_span.get()
    }

    /// Sets the current task's span tag (see [`Sim::span`]). Purely
    /// observational, like [`Sim::set_trace`].
    pub fn set_span(&self, tag: u64) {
        self.inner.current_span.set(tag);
    }

    /// A snapshot of the executor's hot-path counters.
    pub fn profile(&self) -> ExecutorProfile {
        let p = &self.inner.profile;
        ExecutorProfile {
            tasks_spawned: p.tasks_spawned.get(),
            task_polls: p.task_polls.get(),
            timers_set: p.timers_set.get(),
            timers_fired: p.timers_fired.get(),
            timers_cancelled: p.timers_cancelled.get(),
            max_ready_queue: p.max_ready_queue.get(),
            max_timer_heap: p.max_timer_heap.get(),
        }
    }

    /// Spawns a task onto the executor and returns a [`JoinHandle`] for its
    /// output.
    ///
    /// Dropping the handle detaches the task; it keeps running. Tasks only
    /// make progress inside [`Sim::run`] / [`Sim::run_until`].
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = future.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        };

        let id = {
            let mut free = self.inner.free.borrow_mut();
            if let Some(id) = free.pop() {
                id
            } else {
                let mut tasks = self.inner.tasks.borrow_mut();
                tasks.push(None);
                tasks.len() - 1
            }
        };
        let waker_state = Arc::new(TaskWaker {
            id,
            queued: AtomicBool::new(true),
            ready: Arc::clone(&self.inner.ready),
        });
        let waker = Waker::from(Arc::clone(&waker_state));
        let slot = Rc::new(TaskSlot {
            future: RefCell::new(Box::pin(wrapped)),
            waker_state,
            waker,
            // Causal inheritance: a spawned task belongs to the span that
            // spawned it until it opens a span of its own.
            trace_tag: Cell::new(self.inner.current_trace.get()),
            span_tag: Cell::new(self.inner.current_span.get()),
        });
        self.inner.tasks.borrow_mut()[id] = Some(slot);
        self.inner.live.set(self.inner.live.get() + 1);
        let p = &self.inner.profile;
        p.tasks_spawned.set(p.tasks_spawned.get() + 1);
        let mut ready = self.inner.ready.lock();
        ready.push_back(id);
        p.max_ready_queue
            .set(p.max_ready_queue.get().max(ready.len() as u64));
        drop(ready);
        JoinHandle { state }
    }

    /// Registers `waker` to fire at `deadline`, returning a cancellation
    /// flag. Used by [`Sleep`].
    pub(crate) fn register_timer(&self, deadline: SimTime, waker: Waker) -> Rc<Cell<bool>> {
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        let cancelled = Rc::new(Cell::new(false));
        let mut timers = self.inner.timers.borrow_mut();
        timers.push(Reverse(TimerEntry {
            deadline,
            seq,
            waker,
            cancelled: Rc::clone(&cancelled),
        }));
        let p = &self.inner.profile;
        p.timers_set.set(p.timers_set.get() + 1);
        p.max_timer_heap
            .set(p.max_timer_heap.get().max(timers.len() as u64));
        cancelled
    }

    /// Returns a future that completes after `dur` of virtual time.
    ///
    /// Durations are *true* time even through a drifted handle: a skewed
    /// clock changes what timestamps a node reads, not how fast its
    /// interval timers run (`CLOCK_MONOTONIC` semantics).
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        let deadline = self.true_now() + dur;
        Sleep {
            sim: self.clone(),
            deadline,
            registration: None,
        }
    }

    /// Returns a future that completes when this handle's clock reads
    /// `deadline`. Through a drifted handle the deadline is interpreted on
    /// the node-local clock and converted to true time at call site (the
    /// remaining local wait is taken at face value), so the timer itself
    /// still rides the true-time heap.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        let deadline = match &self.skew {
            Some(_) => self.true_now() + deadline.saturating_since(self.now()),
            None => deadline,
        };
        Sleep {
            sim: self.clone(),
            deadline,
            registration: None,
        }
    }

    fn poll_task(&self, id: TaskId) {
        let slot = {
            let tasks = self.inner.tasks.borrow();
            match tasks.get(id).and_then(|s| s.clone()) {
                Some(s) => s,
                None => return, // already completed; stale wake
            }
        };
        slot.waker_state.queued.store(false, Ordering::Relaxed);
        let mut cx = Context::from_waker(&slot.waker);
        let p = &self.inner.profile;
        p.task_polls.set(p.task_polls.get() + 1);
        // Swap the task's trace and span tags in around the poll so
        // `Sim::trace` / `Sim::span` always name the operation and phase
        // of the code actually running, across awaits and interleavings.
        let outer_trace = self.inner.current_trace.replace(slot.trace_tag.get());
        let outer_span = self.inner.current_span.replace(slot.span_tag.get());
        let poll = slot.future.borrow_mut().as_mut().poll(&mut cx);
        slot.trace_tag
            .set(self.inner.current_trace.replace(outer_trace));
        slot.span_tag
            .set(self.inner.current_span.replace(outer_span));
        if poll.is_ready() {
            self.inner.tasks.borrow_mut()[id] = None;
            self.inner.free.borrow_mut().push(id);
            self.inner.live.set(self.inner.live.get() - 1);
        }
    }

    /// Runs one scheduler step: drains runnable tasks, then fires the
    /// earliest timer (advancing the clock). Returns `false` when the
    /// simulation has quiesced (no runnable tasks and no timers).
    fn step(&self, horizon: SimTime) -> bool {
        let mut polled_any = false;
        loop {
            let next = {
                let mut ready = self.inner.ready.lock();
                let p = &self.inner.profile;
                p.max_ready_queue
                    .set(p.max_ready_queue.get().max(ready.len() as u64));
                ready.pop_front()
            };
            match next {
                Some(id) => {
                    self.poll_task(id);
                    polled_any = true;
                }
                None => break,
            }
        }
        // No runnable tasks: advance the clock to the next *live* timer,
        // silently discarding cancelled entries (they must not move time).
        let entry = {
            let mut timers = self.inner.timers.borrow_mut();
            loop {
                match timers.peek() {
                    Some(Reverse(e)) if e.cancelled.get() => {
                        timers.pop();
                        let p = &self.inner.profile;
                        p.timers_cancelled.set(p.timers_cancelled.get() + 1);
                    }
                    Some(Reverse(e)) if e.deadline <= horizon => {
                        break timers.pop().map(|Reverse(e)| e);
                    }
                    _ => break None,
                }
            }
        };
        match entry {
            Some(e) => {
                debug_assert!(e.deadline >= self.inner.now.get(), "time went backwards");
                self.inner.now.set(e.deadline.max(self.inner.now.get()));
                let p = &self.inner.profile;
                p.timers_fired.set(p.timers_fired.get() + 1);
                e.waker.wake();
                true
            }
            None => polled_any,
        }
    }

    /// Runs until no task is runnable and no timer is pending.
    ///
    /// Tasks blocked forever (e.g. awaiting a message that was lost) do not
    /// keep the loop alive — a quiesced simulation returns even if such
    /// tasks exist.
    pub fn run(&self) {
        while self.step(SimTime::MAX) {}
    }

    /// Runs until the virtual clock reaches `deadline` (or the simulation
    /// quiesces first). The clock is left at `min(deadline, quiesce time)`.
    pub fn run_until(&self, deadline: SimTime) {
        while self.inner.now.get() < deadline && self.step(deadline) {}
        if self.inner.now.get() < deadline {
            // Quiesced early: jump the clock so callers observe the full span.
            self.inner.now.set(deadline);
        }
    }

    /// Runs the simulation until `handle`'s task completes, returning its
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if the simulation quiesces before the task completes (i.e. the
    /// task is deadlocked waiting on something that can never happen).
    pub fn run_until_complete<T>(&self, handle: JoinHandle<T>) -> T {
        loop {
            if let Some(v) = handle.state.borrow_mut().result.take() {
                return v;
            }
            if !self.step(SimTime::MAX) {
                panic!(
                    "simulation quiesced before task completed (deadlock at {})",
                    self.now()
                );
            }
        }
    }

    /// Convenience: spawn `future` and run the simulation to its completion.
    pub fn block_on<F>(&self, future: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(future);
        self.run_until_complete(handle)
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Future resolving to a spawned task's output.
///
/// Unlike some runtimes, dropping a `JoinHandle` never cancels the task —
/// this mirrors real distributed systems, where a message already sent keeps
/// having effects even if the sender stops waiting for the reply. Quorum
/// operations rely on this: the straggler replica writes still land.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("done", &self.state.borrow().result.is_some())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Takes the task output if the task has completed, without blocking.
    pub fn try_result(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Whether the task has completed (output may already be taken).
    pub fn is_done(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        match s.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                s.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
///
/// Dropping a `Sleep` before it fires cancels its timer: a dropped timer
/// never advances the virtual clock (critical for [`crate::combinators::timeout`],
/// which drops the loser of its race).
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registration: Option<(Rc<Cell<bool>>, Waker)>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        // The deadline was resolved to true time at creation; comparing
        // against the skewed clock here would double-apply the drift.
        if self.sim.true_now() >= self.deadline {
            // Fired (or created in the past): nothing left to cancel.
            self.registration = None;
            Poll::Ready(())
        } else {
            // (Re-)register when unregistered or when the task's waker
            // changed since the last poll — the heap entry holds the old
            // waker and would otherwise wake the wrong task.
            let needs_registration = match &self.registration {
                None => true,
                Some((_, registered)) => !registered.will_wake(cx.waker()),
            };
            if needs_registration {
                if let Some((old, _)) = self.registration.take() {
                    old.set(true); // cancel the stale entry
                }
                let deadline = self.deadline;
                let waker = cx.waker().clone();
                let flag = self.sim.register_timer(deadline, waker.clone());
                self.registration = Some((flag, waker));
            }
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some((flag, _)) = self.registration.take() {
            flag.set(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new();
        let h = sim.spawn({
            let sim = sim.clone();
            async move {
                sim.sleep(SimDuration::from_millis(100)).await;
                sim.sleep(SimDuration::from_millis(50)).await;
                sim.now()
            }
        });
        let t = sim.run_until_complete(h);
        assert_eq!(t.as_millis(), 150);
    }

    #[test]
    fn concurrent_sleeps_interleave_deterministically() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (name, ms) in [("a", 30u64), ("b", 10), ("c", 20)] {
            let sim2 = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(ms)).await;
                order.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["b", "c", "a"]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let h = sim.spawn(async { 42 });
        sim.run();
        assert_eq!(h.try_result(), Some(42));
    }

    #[test]
    fn block_on_nested_spawns() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let total = sim.block_on(async move {
            let mut handles = Vec::new();
            for i in 0..10u64 {
                let sim3 = sim2.clone();
                handles.push(sim2.spawn(async move {
                    sim3.sleep(SimDuration::from_micros(i)).await;
                    i
                }));
            }
            let mut sum = 0;
            for h in handles {
                sum += h.await;
            }
            sum
        });
        assert_eq!(total, 45);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new();
        let fired = Rc::new(StdCell::new(false));
        let fired2 = Rc::clone(&fired);
        let sim2 = sim.clone();
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_secs(10)).await;
            fired2.set(true);
        });
        sim.run_until(SimTime::from_micros(5_000_000));
        assert!(!fired.get());
        assert_eq!(sim.now(), SimTime::from_micros(5_000_000));
        sim.run();
        assert!(fired.get());
    }

    #[test]
    fn run_until_jumps_clock_when_quiesced() {
        let sim = Sim::new();
        sim.run_until(SimTime::from_micros(777));
        assert_eq!(sim.now(), SimTime::from_micros(777));
    }

    #[test]
    fn dropped_handle_detaches_but_task_still_runs() {
        let sim = Sim::new();
        let flag = Rc::new(StdCell::new(false));
        let flag2 = Rc::clone(&flag);
        let sim2 = sim.clone();
        drop(sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(1)).await;
            flag2.set(true);
        }));
        sim.run();
        assert!(flag.get());
    }

    #[test]
    fn simulation_quiesces_with_forever_pending_tasks() {
        let sim = Sim::new();
        sim.spawn(std::future::pending::<()>());
        sim.run(); // must terminate
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn run_until_complete_panics_on_deadlock() {
        let sim = Sim::new();
        let h = sim.spawn(std::future::pending::<()>());
        sim.run_until_complete(h);
    }

    #[test]
    fn task_slots_are_reused() {
        let sim = Sim::new();
        for _ in 0..100 {
            let h = sim.spawn(async {});
            sim.run();
            assert!(h.is_done());
        }
        assert!(sim.inner.tasks.borrow().len() <= 2);
    }

    #[test]
    fn dropped_sleep_does_not_advance_the_clock() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        sim.block_on(async move {
            // Create a far-future sleep and drop it immediately (what a
            // timeout whose inner future wins does).
            let long = sim2.sleep(SimDuration::from_secs(100));
            drop(long);
            sim2.sleep(SimDuration::from_millis(5)).await;
        });
        // Quiesce: the cancelled 100s timer must not fast-forward time.
        sim.run();
        assert_eq!(sim.now().as_millis(), 5, "clock stopped at the live timer");
    }

    #[test]
    fn trace_tags_survive_awaits_and_are_isolated_per_task() {
        let sim = Sim::new();
        let seen = Rc::new(RefCell::new(Vec::new()));
        for (tag, ms) in [(1u64, 30u64), (2, 10), (3, 20)] {
            let sim2 = sim.clone();
            let seen = Rc::clone(&seen);
            sim.spawn(async move {
                sim2.set_trace(tag);
                sim2.sleep(SimDuration::from_millis(ms)).await;
                // Interleaved with the other tasks, yet each observes its
                // own tag after resuming.
                seen.borrow_mut().push((tag, sim2.trace()));
            });
        }
        sim.run();
        assert_eq!(*seen.borrow(), vec![(2, 2), (3, 3), (1, 1)]);
    }

    #[test]
    fn spawned_tasks_inherit_the_spawners_trace_tag() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let child_tag = sim.block_on(async move {
            sim2.set_trace(7);
            let sim3 = sim2.clone();
            let h = sim2.spawn(async move {
                sim3.sleep(SimDuration::from_millis(1)).await;
                sim3.trace()
            });
            h.await
        });
        assert_eq!(child_tag, 7);
    }

    #[test]
    fn span_tags_are_isolated_per_task_and_inherited() {
        let sim = Sim::new();
        let seen = Rc::new(RefCell::new(Vec::new()));
        for (tag, ms) in [(10u64, 30u64), (20, 10), (30, 20)] {
            let sim2 = sim.clone();
            let seen = Rc::clone(&seen);
            sim.spawn(async move {
                sim2.set_span(tag);
                sim2.sleep(SimDuration::from_millis(ms)).await;
                seen.borrow_mut().push((tag, sim2.span()));
            });
        }
        sim.run();
        assert_eq!(*seen.borrow(), vec![(20, 20), (30, 30), (10, 10)]);

        let sim2 = sim.clone();
        let child = sim.block_on(async move {
            sim2.set_span(77);
            let sim3 = sim2.clone();
            let h = sim2.spawn(async move {
                sim3.sleep(SimDuration::from_millis(1)).await;
                sim3.span()
            });
            sim2.set_span(0);
            h.await
        });
        assert_eq!(child, 77, "spawned task inherits the span at spawn time");
    }

    #[test]
    fn profile_counts_polls_timers_and_depths() {
        let sim = Sim::new();
        for i in 0..4u64 {
            let sim2 = sim.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(i + 1)).await;
            });
        }
        // One cancelled timer: the loser of a drop race.
        let sim2 = sim.clone();
        sim.spawn(async move {
            let long = sim2.sleep(SimDuration::from_secs(99));
            drop(long);
        });
        sim.run();
        let p = sim.profile();
        assert_eq!(p.tasks_spawned, 5);
        assert_eq!(p.timers_fired, 4);
        assert_eq!(p.timers_set, 4, "the dropped sleep never registered");
        assert!(p.task_polls >= 9, "each sleeper polls at least twice");
        assert_eq!(p.events(), p.task_polls + p.timers_fired);
        assert!(p.max_ready_queue >= 4);
        assert!(p.max_timer_heap >= 1);
        // Deterministic: an identical schedule yields an identical profile.
        let sim_b = Sim::new();
        for i in 0..4u64 {
            let s = sim_b.clone();
            sim_b.spawn(async move {
                s.sleep(SimDuration::from_millis(i + 1)).await;
            });
        }
        let s = sim_b.clone();
        sim_b.spawn(async move {
            drop(s.sleep(SimDuration::from_secs(99)));
        });
        sim_b.run();
        assert_eq!(sim_b.profile(), p);
    }

    #[test]
    fn drifted_handle_skews_now_but_not_scheduling() {
        let sim = Sim::new();
        let fast = sim.with_drift(DriftSpec {
            offset_us: 2_000,
            rate_ppm: 0,
            step_us: 0,
            step_window: SimDuration::from_secs(1),
            seed: 0,
        });
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(fast.now(), SimTime::from_micros(2_000));
        assert_eq!(fast.true_now(), SimTime::ZERO);

        // A sleep through the skewed handle takes true duration.
        let fast2 = fast.clone();
        let h = sim.spawn(async move {
            fast2.sleep(SimDuration::from_millis(10)).await;
            (fast2.true_now(), fast2.now())
        });
        let (true_t, local_t) = sim.run_until_complete(h);
        assert_eq!(true_t.as_millis(), 10);
        assert_eq!(local_t.as_micros(), 12_000);
    }

    #[test]
    fn drifted_sleep_until_interprets_the_local_clock() {
        let sim = Sim::new();
        let slow = sim.with_drift(DriftSpec {
            offset_us: -3_000,
            rate_ppm: 0,
            step_us: 0,
            step_window: SimDuration::from_secs(1),
            seed: 0,
        });
        let slow2 = slow.clone();
        let h = sim.spawn(async move {
            // Move past the offset so the local clock is out of its zero
            // clamp, then wait for local deadline 12ms: the local clock
            // reads true − 3ms, so the true wait runs to 15ms and the local
            // clock lands exactly on the deadline.
            slow2.sleep(SimDuration::from_millis(10)).await;
            slow2.sleep_until(SimTime::from_micros(12_000)).await;
            (slow2.true_now(), slow2.now())
        });
        let (true_t, local_t) = sim.run_until_complete(h);
        assert_eq!(true_t.as_micros(), 15_000);
        assert_eq!(local_t.as_micros(), 12_000);
    }

    #[test]
    fn drift_does_not_change_the_schedule() {
        // The same workload with and without drifted handles produces the
        // identical executor profile: drift touches timestamps only.
        let run = |drift: bool| {
            let sim = Sim::new();
            let order = Rc::new(RefCell::new(Vec::new()));
            for (i, ms) in [(0u64, 30u64), (1, 10), (2, 20)] {
                let handle = if drift {
                    sim.with_drift(DriftSpec::bounded(
                        i,
                        SimDuration::from_millis(5),
                        SimDuration::from_secs(60),
                    ))
                } else {
                    sim.clone()
                };
                let order = Rc::clone(&order);
                sim.spawn(async move {
                    handle.sleep(SimDuration::from_millis(ms)).await;
                    let _ = handle.now(); // read the (possibly skewed) clock
                    order.borrow_mut().push(i);
                });
            }
            sim.run();
            let seen = order.borrow().clone();
            (seen, sim.profile(), sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn timers_with_same_deadline_fire_in_registration_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let sim2 = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(7)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }
}
