//! Site topology and the WAN latency profiles of Table II.
//!
//! A *site* is a data center at a physical location; sites are connected by
//! a WAN whose round-trip times are given by a symmetric RTT matrix. The
//! paper's three 3-site profiles (`1l`, `1Us`, `1UsEu`, Table II) are
//! provided as constructors, and arbitrary matrices can be built for larger
//! deployments (e.g. the 9-node sharded cluster of Fig. 4(b)).

use crate::time::SimDuration;

/// Identifier of a geographic site (data center).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u32);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A named set of sites plus the symmetric RTT matrix between them.
///
/// # Examples
///
/// ```
/// use music_simnet::topology::LatencyProfile;
///
/// let p = LatencyProfile::one_us();
/// assert_eq!(p.site_count(), 3);
/// // Ohio <-> Oregon RTT from Table II.
/// assert_eq!(p.rtt(0, 2).as_micros(), 72_140);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyProfile {
    name: String,
    site_names: Vec<String>,
    /// Full symmetric RTT matrix (ms), diagonal = intra-site RTT.
    rtt_ms: Vec<Vec<f64>>,
}

/// Intra-site RTT used on the matrix diagonal (same-rack networking).
const INTRA_SITE_RTT_MS: f64 = 0.2;

impl LatencyProfile {
    /// Builds a profile from a list of site names and the upper-triangle
    /// RTTs in row-major order: for `n` sites, `upper` holds
    /// `rtt(0,1), rtt(0,2), …, rtt(0,n-1), rtt(1,2), …` — the same order
    /// Table II uses (`Site1-Site2, Site1-Site3, Site2-Site3`).
    ///
    /// # Panics
    ///
    /// Panics if `upper.len() != n*(n-1)/2` or any RTT is negative.
    pub fn from_upper_triangle(
        name: impl Into<String>,
        site_names: &[&str],
        upper: &[f64],
    ) -> Self {
        let n = site_names.len();
        assert_eq!(upper.len(), n * (n - 1) / 2, "wrong upper-triangle length");
        assert!(upper.iter().all(|&x| x >= 0.0), "negative RTT");
        let mut rtt_ms = vec![vec![INTRA_SITE_RTT_MS; n]; n];
        let mut it = upper.iter();
        // Symmetric fill: [i][j] and [j][i] from one triangle entry.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                let v = *it.next().expect("length checked");
                rtt_ms[i][j] = v;
                rtt_ms[j][i] = v;
            }
        }
        LatencyProfile {
            name: name.into(),
            site_names: site_names.iter().map(|s| s.to_string()).collect(),
            rtt_ms,
        }
    }

    /// Table II profile `1l`: Ohio, Ohio, N. Virginia — within one AWS
    /// region plus one nearby region.
    pub fn one_l() -> Self {
        Self::from_upper_triangle("1l", &["Ohio", "Ohio", "N.Virginia"], &[0.2, 15.14, 15.14])
    }

    /// Table II profile `1Us`: Ohio, N. California, Oregon — cross-region,
    /// within the US.
    pub fn one_us() -> Self {
        Self::from_upper_triangle(
            "1Us",
            &["Ohio", "N.California", "Oregon"],
            &[53.79, 72.14, 24.2],
        )
    }

    /// Table II profile `1UsEu`: Ohio, N. California, Frankfurt —
    /// intercontinental.
    pub fn one_us_eu() -> Self {
        Self::from_upper_triangle(
            "1UsEu",
            &["Ohio", "N.California", "Frankfurt"],
            &[53.79, 100.56, 150.74],
        )
    }

    /// The three Table II profiles in paper order.
    pub fn table_ii() -> Vec<LatencyProfile> {
        vec![Self::one_l(), Self::one_us(), Self::one_us_eu()]
    }

    /// Profile name (e.g. `"1Us"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.site_names.len()
    }

    /// Human-readable name of a site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn site_name(&self, site: usize) -> &str {
        &self.site_names[site]
    }

    /// Round-trip time between two sites (intra-site on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn rtt(&self, a: usize, b: usize) -> SimDuration {
        SimDuration::from_millis_f64(self.rtt_ms[a][b])
    }

    /// One-way propagation delay between two sites (half the RTT).
    pub fn one_way(&self, a: usize, b: usize) -> SimDuration {
        SimDuration::from_millis_f64(self.rtt_ms[a][b] / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        let p = LatencyProfile::one_l();
        assert_eq!(p.rtt(0, 1).as_micros(), 200);
        assert_eq!(p.rtt(0, 2).as_micros(), 15_140);
        assert_eq!(p.rtt(1, 2).as_micros(), 15_140);

        let p = LatencyProfile::one_us();
        assert_eq!(p.rtt(0, 1).as_micros(), 53_790);
        assert_eq!(p.rtt(0, 2).as_micros(), 72_140);
        assert_eq!(p.rtt(1, 2).as_micros(), 24_200);

        let p = LatencyProfile::one_us_eu();
        assert_eq!(p.rtt(0, 1).as_micros(), 53_790);
        assert_eq!(p.rtt(0, 2).as_micros(), 100_560);
        assert_eq!(p.rtt(1, 2).as_micros(), 150_740);
    }

    #[test]
    fn matrix_is_symmetric() {
        for p in LatencyProfile::table_ii() {
            for a in 0..p.site_count() {
                for b in 0..p.site_count() {
                    assert_eq!(p.rtt(a, b), p.rtt(b, a), "{} rtt({a},{b})", p.name());
                }
            }
        }
    }

    #[test]
    fn one_way_is_half_rtt() {
        let p = LatencyProfile::one_us();
        assert_eq!(p.one_way(0, 2).as_micros(), 36_070);
    }

    #[test]
    fn diagonal_is_intra_site() {
        let p = LatencyProfile::one_us_eu();
        for a in 0..3 {
            assert_eq!(p.rtt(a, a).as_micros(), 200);
        }
    }

    #[test]
    #[should_panic(expected = "wrong upper-triangle length")]
    fn bad_triangle_length_panics() {
        LatencyProfile::from_upper_triangle("x", &["a", "b", "c"], &[1.0]);
    }
}
