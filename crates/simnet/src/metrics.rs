//! Latency and throughput bookkeeping for experiments.
//!
//! [`Histogram`] records virtual-time latencies and answers the statistics
//! the paper reports: mean, standard deviation, percentiles, and full CDFs
//! (Fig. 8). [`Throughput`] converts an op count over a virtual interval
//! into op/s.

use crate::time::{SimDuration, SimTime};

/// A simple exact histogram of durations (stores every sample).
///
/// Experiments here record at most a few hundred thousand samples, so exact
/// storage is cheaper than maintaining bucketed sketches and keeps the
/// percentile math trivial and precise.
///
/// # Examples
///
/// ```
/// use music_simnet::metrics::Histogram;
/// use music_simnet::time::SimDuration;
///
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(0.5).as_millis(), 3);
/// assert_eq!(h.max().as_millis(), 100);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_micros());
        self.sorted = false;
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Arithmetic mean. Returns [`SimDuration::ZERO`] when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        SimDuration::from_micros((sum / self.samples.len() as u128) as u64)
    }

    /// Population standard deviation in milliseconds. Zero when empty.
    pub fn stddev_millis(&self) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.samples.iter().map(|&s| s as f64).sum::<f64>() / n as f64;
        let var = self
            .samples
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / 1_000.0
    }

    /// The `p`-th percentile (`0.0 ..= 1.0`, nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is out of range. Prefer
    /// [`Histogram::try_percentile`] when the histogram may be empty
    /// (e.g. rendering a report for an operation that never ran).
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        self.try_percentile(p).expect("empty histogram")
    }

    /// The `p`-th percentile (`0.0 ..= 1.0`, nearest-rank), or `None`
    /// when no samples were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn try_percentile(&mut self, p: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Some(SimDuration::from_micros(self.samples[rank - 1]))
    }

    /// The standard report row: count, mean, p50/p95/p99/p99.9, and max.
    /// Safe on an empty histogram (the percentile/max fields are `None`
    /// and render as `-`).
    pub fn summary(&mut self) -> Summary {
        let count = self.count();
        Summary {
            count,
            mean: self.mean(),
            p50: self.try_percentile(0.50),
            p95: self.try_percentile(0.95),
            p99: self.try_percentile(0.99),
            p999: self.try_percentile(0.999),
            max: (count > 0).then(|| self.max()),
        }
    }

    /// Smallest sample. [`SimDuration::ZERO`] when empty.
    pub fn min(&mut self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        SimDuration::from_micros(self.samples[0])
    }

    /// Largest sample. [`SimDuration::ZERO`] when empty.
    pub fn max(&mut self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        SimDuration::from_micros(*self.samples.last().expect("non-empty"))
    }

    /// Full CDF sampled at `points` evenly spaced cumulative fractions,
    /// returned as `(latency, fraction ≤ latency)` pairs — the series
    /// plotted in Fig. 8.
    pub fn cdf(&mut self, points: usize) -> Vec<(SimDuration, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
                (SimDuration::from_micros(self.samples[idx]), frac)
            })
            .collect()
    }
}

/// One-line latency digest of a [`Histogram`] (see [`Histogram::summary`]).
///
/// `Display` renders milliseconds with `-` for statistics an empty
/// histogram cannot provide, so report tables stay aligned even for
/// operations that never ran.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean ([`SimDuration::ZERO`] when empty).
    pub mean: SimDuration,
    /// Median, if any samples exist.
    pub p50: Option<SimDuration>,
    /// 95th percentile, if any samples exist.
    pub p95: Option<SimDuration>,
    /// 99th percentile, if any samples exist.
    pub p99: Option<SimDuration>,
    /// 99.9th percentile, if any samples exist — the tail the far-site
    /// starvation analysis watches (a fair lock keeps p99.9 close to
    /// p99; a starving site's p99.9 runs away).
    pub p999: Option<SimDuration>,
    /// Largest sample, if any samples exist.
    pub max: Option<SimDuration>,
}

impl Summary {
    fn fmt_opt(d: Option<SimDuration>) -> String {
        match d {
            Some(d) => format!("{:.2}", d.as_millis_f64()),
            None => "-".to_string(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} p999={} max={}",
            self.count,
            Self::fmt_opt((self.count > 0).then_some(self.mean)),
            Self::fmt_opt(self.p50),
            Self::fmt_opt(self.p95),
            Self::fmt_opt(self.p99),
            Self::fmt_opt(self.p999),
            Self::fmt_opt(self.max),
        )
    }
}

/// Throughput accumulator over a virtual-time measurement window.
#[derive(Copy, Clone, Debug)]
pub struct Throughput {
    started: SimTime,
    ops: u64,
}

impl Throughput {
    /// Starts a measurement window at `now`.
    pub fn start(now: SimTime) -> Self {
        Throughput {
            started: now,
            ops: 0,
        }
    }

    /// Counts `n` completed operations.
    pub fn add(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total operations counted.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Operations per virtual second as of `now`. Zero if no time elapsed.
    pub fn ops_per_sec(&self, now: SimTime) -> f64 {
        let secs = (now - self.started).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values_ms: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values_ms {
            h.record(SimDuration::from_millis(v));
        }
        h
    }

    #[test]
    fn mean_and_extremes() {
        let mut h = hist(&[10, 20, 30]);
        assert_eq!(h.mean().as_millis(), 20);
        assert_eq!(h.min().as_millis(), 10);
        assert_eq!(h.max().as_millis(), 30);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = hist(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.percentile(0.5).as_millis(), 5);
        assert_eq!(h.percentile(0.9).as_millis(), 9);
        assert_eq!(h.percentile(0.99).as_millis(), 10);
        assert_eq!(h.percentile(0.0).as_millis(), 1);
        assert_eq!(h.percentile(1.0).as_millis(), 10);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let h = hist(&[5, 5, 5, 5]);
        assert_eq!(h.stddev_millis(), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        // samples 2ms,4ms,4ms,4ms,5ms,5ms,7ms,9ms: population stddev = 2ms
        let h = hist(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((h.stddev_millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = hist(&[1, 2]);
        let b = hist(&[3, 4]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max().as_millis(), 4);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut h = hist(&[5, 1, 9, 3, 7, 2, 8, 4, 6, 10]);
        let cdf = h.cdf(10);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(cdf.last().unwrap().0.as_millis(), 10);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert!(h.cdf(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn percentile_of_empty_panics() {
        let mut h = Histogram::new();
        let _ = h.percentile(0.5);
    }

    #[test]
    fn try_percentile_is_total() {
        let mut empty = Histogram::new();
        assert_eq!(empty.try_percentile(0.5), None);
        let mut h = hist(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.try_percentile(0.5).unwrap().as_millis(), 5);
        assert_eq!(h.try_percentile(0.5), Some(h.percentile(0.5)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn try_percentile_still_validates_p() {
        let mut h = hist(&[1]);
        let _ = h.try_percentile(1.5);
    }

    #[test]
    fn summary_reports_the_standard_row() {
        let mut h = hist(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.mean.as_millis(), 5);
        assert_eq!(s.p50.unwrap().as_millis(), 5);
        assert_eq!(s.p95.unwrap().as_millis(), 10);
        assert_eq!(s.p99.unwrap().as_millis(), 10);
        assert_eq!(s.p999.unwrap().as_millis(), 10);
        assert_eq!(s.max.unwrap().as_millis(), 10);
        assert_eq!(
            s.to_string(),
            "n=10 mean=5.50 p50=5.00 p95=10.00 p99=10.00 p999=10.00 max=10.00"
        );
    }

    #[test]
    fn p999_separates_from_p99_on_large_tails() {
        // 500 samples at 1ms plus one 500ms straggler: nearest-rank puts
        // p99.9 at rank ceil(0.999·501) = 501 — the straggler — while
        // p99 (rank 496) stays in the body.
        let mut h = Histogram::new();
        for _ in 0..500 {
            h.record(SimDuration::from_millis(1));
        }
        h.record(SimDuration::from_millis(500));
        let s = h.summary();
        assert_eq!(s.p99.unwrap().as_millis(), 1);
        assert_eq!(s.p999.unwrap().as_millis(), 500);
    }

    #[test]
    fn summary_of_empty_renders_dashes() {
        let mut h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, None);
        assert_eq!(s.to_string(), "n=0 mean=- p50=- p95=- p99=- p999=- max=-");
    }

    #[test]
    fn throughput_math() {
        let mut t = Throughput::start(SimTime::ZERO);
        t.add(500);
        let now = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(t.ops(), 500);
        assert!((t.ops_per_sec(now) - 100.0).abs() < 1e-9);
        assert_eq!(t.ops_per_sec(SimTime::ZERO), 0.0);
    }
}
