//! Small future combinators used by the protocol layers.
//!
//! These are intentionally minimal, single-threaded (`!Send`-friendly)
//! equivalents of the usual async utilities: [`timeout`], [`join_all`],
//! [`never()`], and the workhorse of replicated stores, [`quorum`] — wait
//! for the first *k* of *n* spawned sub-operations.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::{JoinHandle, Sim, Sleep};
use crate::time::SimDuration;

/// Error returned by [`timeout`] when the deadline fires first.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation timed out")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    future: Pin<Box<F>>,
    sleep: Pin<Box<Sleep>>,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.future.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match self.sleep.as_mut().poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Races `future` against a virtual-time deadline.
///
/// The inner future is dropped if the deadline fires first; pair with
/// detached tasks ([`Sim::spawn`]) when the underlying effect must survive
/// the timeout (as replica-side writes do).
pub fn timeout<F: Future>(sim: &Sim, dur: SimDuration, future: F) -> Timeout<F> {
    Timeout {
        future: Box::pin(future),
        sleep: Box::pin(sim.sleep(dur)),
    }
}

/// A future that never completes. Models a lost message from the sender's
/// point of view: the only way to detect it is a timeout.
pub async fn never<T>() -> T {
    std::future::pending::<T>().await
}

/// Yields once, letting other runnable tasks proceed at the same instant.
pub fn yield_now() -> YieldNow {
    YieldNow { polled: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Waits for every future in `futures`, returning outputs in input order.
pub async fn join_all<F: Future>(futures: Vec<F>) -> Vec<F::Output> {
    let mut pinned: Vec<Pin<Box<F>>> = futures.into_iter().map(Box::pin).collect();
    let mut results: Vec<Option<F::Output>> = (0..pinned.len()).map(|_| None).collect();
    std::future::poll_fn(move |cx| {
        let mut all_done = true;
        for (fut, slot) in pinned.iter_mut().zip(results.iter_mut()) {
            if slot.is_none() {
                match fut.as_mut().poll(cx) {
                    Poll::Ready(v) => *slot = Some(v),
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(
                results
                    .iter_mut()
                    .map(|s| s.take().expect("done"))
                    .collect(),
            )
        } else {
            Poll::Pending
        }
    })
    .await
}

/// Future returned by [`quorum`].
pub struct Quorum<T> {
    handles: Vec<Option<JoinHandle<T>>>,
    results: Vec<(usize, T)>,
    need: usize,
}

// `Quorum` owns no self-referential data; all fields live behind owned
// containers, so moving it is always sound.
impl<T> Unpin for Quorum<T> {}

impl<T> Future for Quorum<T> {
    type Output = Vec<(usize, T)>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        for i in 0..this.handles.len() {
            if this.results.len() >= this.need {
                break;
            }
            if let Some(h) = &mut this.handles[i] {
                if let Poll::Ready(v) = Pin::new(h).poll(cx) {
                    this.handles[i] = None;
                    this.results.push((i, v));
                }
            }
        }
        if this.results.len() >= this.need {
            Poll::Ready(std::mem::take(&mut this.results))
        } else {
            Poll::Pending
        }
    }
}

/// Waits for the first `need` completions among spawned sub-operations.
///
/// Returns `(index, output)` pairs in completion order. Remaining handles
/// are dropped — but because [`JoinHandle`] detaches rather than cancels,
/// the straggler operations still run to completion in the background,
/// exactly like the laggard replicas of a real quorum write.
///
/// If fewer than `need` tasks can ever complete the future never resolves;
/// guard with [`timeout`].
///
/// # Panics
///
/// Panics immediately if `need > handles.len()` (the quorum could never be
/// met even in a failure-free run).
pub fn quorum<T>(handles: Vec<JoinHandle<T>>, need: usize) -> Quorum<T> {
    assert!(
        need <= handles.len(),
        "quorum of {need} impossible with {} replicas",
        handles.len()
    );
    Quorum {
        results: Vec::with_capacity(need),
        handles: handles.into_iter().map(Some).collect(),
        need,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn timeout_returns_ok_when_future_wins() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let out = sim.block_on(async move {
            let fast = {
                let sim3 = sim2.clone();
                async move {
                    sim3.sleep(SimDuration::from_millis(1)).await;
                    7
                }
            };
            timeout(&sim2, SimDuration::from_millis(10), fast).await
        });
        assert_eq!(out, Ok(7));
    }

    #[test]
    fn timeout_elapses_on_lost_message() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let out = sim.block_on(async move {
            timeout(&sim2, SimDuration::from_millis(10), never::<u32>()).await
        });
        assert_eq!(out, Err(Elapsed));
        assert_eq!(sim.now(), SimTime::from_micros(10_000));
    }

    #[test]
    fn join_all_preserves_order() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let out = sim.block_on(async move {
            let futs: Vec<_> = (0..4u64)
                .map(|i| {
                    let sim3 = sim2.clone();
                    async move {
                        // Later indices sleep less: completion order reversed.
                        sim3.sleep(SimDuration::from_millis(10 - i)).await;
                        i
                    }
                })
                .collect();
            join_all(futs).await
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn quorum_completes_at_k_and_stragglers_still_run() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let straggler_done = Rc::new(Cell::new(false));
        let sd = Rc::clone(&straggler_done);
        let (at, ids) = sim.block_on(async move {
            let mut handles = Vec::new();
            for i in 0..3u64 {
                let sim3 = sim2.clone();
                let sd = Rc::clone(&sd);
                handles.push(sim2.spawn(async move {
                    sim3.sleep(SimDuration::from_millis(10 * (i + 1))).await;
                    if i == 2 {
                        sd.set(true);
                    }
                    i
                }));
            }
            let res = quorum(handles, 2).await;
            (
                sim2.now(),
                res.into_iter().map(|(i, _)| i).collect::<Vec<_>>(),
            )
        });
        // Quorum of 2 reached at the second completion (20ms).
        assert_eq!(at.as_millis(), 20);
        assert_eq!(ids, vec![0, 1]);
        assert!(!straggler_done.get());
        sim.run();
        assert!(straggler_done.get(), "detached straggler still completed");
    }

    #[test]
    fn quorum_with_lost_replies_pends_until_timeout() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let out = sim.block_on(async move {
            let mut handles = Vec::new();
            // Only 1 of 3 replicas ever answers; quorum of 2 must time out.
            handles.push(sim2.spawn(async move { 1u32 }));
            handles.push(sim2.spawn(never::<u32>()));
            handles.push(sim2.spawn(never::<u32>()));
            timeout(&sim2, SimDuration::from_millis(500), quorum(handles, 2)).await
        });
        assert_eq!(out, Err(Elapsed));
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn quorum_larger_than_replica_set_panics() {
        let sim = Sim::new();
        let handles = vec![sim.spawn(async { 1 })];
        drop(quorum(handles, 2));
    }

    #[test]
    fn quorum_of_zero_resolves_immediately() {
        let sim = Sim::new();
        let out =
            sim.block_on(
                async move { quorum(Vec::<crate::executor::JoinHandle<u32>>::new(), 0).await },
            );
        assert!(out.is_empty());
    }

    #[test]
    fn join_all_of_nothing_is_empty() {
        let sim = Sim::new();
        let out =
            sim.block_on(async move { join_all(Vec::<std::future::Ready<u32>>::new()).await });
        assert!(out.is_empty());
    }

    #[test]
    fn nested_timeouts_inner_wins() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let out = sim.block_on(async move {
            let inner = timeout(&sim2, SimDuration::from_millis(10), never::<u32>());
            timeout(&sim2, SimDuration::from_millis(100), inner).await
        });
        // Outer Ok(inner timed out).
        assert_eq!(out, Ok(Err(Elapsed)));
        assert_eq!(sim.now().as_millis(), 10);
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Sim::new();
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            yield_now().await;
            l1.borrow_mut().push("a2");
        });
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }
}
