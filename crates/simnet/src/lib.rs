//! # music-simnet
//!
//! Deterministic discrete-event simulation substrate for the MUSIC
//! reproduction: a single-threaded virtual-time async executor
//! ([`executor::Sim`]), a WAN model with the paper's Table II latency
//! profiles ([`topology::LatencyProfile`], [`net::Network`]), failure
//! injection (crashes, partitions, loss), and measurement utilities
//! ([`metrics`]).
//!
//! The paper evaluates MUSIC on physical servers with NetEm-emulated WAN
//! latency; this crate substitutes a simulator whose two first-order
//! effects match that testbed: per-message propagation delay from an RTT
//! matrix, and per-node FIFO service queues that produce realistic
//! saturation/queueing behaviour. All higher layers (quorum store, Paxos,
//! Zab, Raft, MUSIC itself) run unmodified protocol logic on top.
//!
//! ## Quickstart
//!
//! ```
//! use music_simnet::prelude::*;
//!
//! let sim = Sim::new();
//! let net = Network::new(sim.clone(), LatencyProfile::one_us(), NetConfig::default(), 42);
//! let a = net.add_node(SiteId(0));
//! let b = net.add_node(SiteId(1));
//! let rtt = sim.block_on({
//!     let net = net.clone();
//!     async move {
//!         let t0 = net.sim().now();
//!         net.rpc(a, b, 64, || ((), 64)).await;
//!         net.sim().now() - t0
//!     }
//! });
//! // Ohio <-> N. California round trip, plus service costs.
//! assert!(rtt.as_millis() >= 53);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod combinators;
pub mod executor;
pub mod metrics;
pub mod net;
pub mod time;
pub mod topology;

/// Convenient glob import of the types almost every consumer needs.
pub mod prelude {
    pub use crate::clock::{DriftClock, DriftSpec};
    pub use crate::combinators::{join_all, never, quorum, timeout, yield_now, Elapsed};
    pub use crate::executor::{JoinHandle, Sim};
    pub use crate::metrics::{Histogram, Throughput};
    pub use crate::net::{LinkStats, NetConfig, Network, NodeId};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{LatencyProfile, SiteId};
}
