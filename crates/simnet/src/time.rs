//! Virtual time types for the simulation.
//!
//! All simulated clocks tick in **microseconds**. Microsecond granularity is
//! deliberate: the MUSIC paper's `forcedRelease` timestamp bump `δ` is one
//! microsecond in the production deployment (§IV-B), so the native tick of
//! the simulator can express it exactly.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation's virtual clock, in microseconds since the
/// start of the run.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. It only ever
/// moves forward while the simulation executes.
///
/// # Examples
///
/// ```
/// use music_simnet::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(
    Copy,
    Clone,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Debug,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// A time so far in the future that no simulation reaches it.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the time as microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as (truncated) milliseconds since the origin.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time as fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in microseconds.
///
/// # Examples
///
/// ```
/// use music_simnet::time::SimDuration;
///
/// let rtt = SimDuration::from_millis_f64(53.79);
/// assert_eq!(rtt.as_micros(), 53_790);
/// assert_eq!(rtt / 2, SimDuration::from_micros(26_895));
/// ```
#[derive(
    Copy,
    Clone,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Debug,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from fractional milliseconds (e.g. Table II RTTs
    /// such as `53.79`), rounding to the nearest microsecond.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(3);
        assert_eq!(t1 - t0, SimDuration::from_micros(3_000));
        assert_eq!(t1.as_millis(), 3);
    }

    #[test]
    fn saturating_subtraction_never_underflows() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(50);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(40));
    }

    #[test]
    fn fractional_millis_round_to_micros() {
        assert_eq!(SimDuration::from_millis_f64(0.2).as_micros(), 200);
        assert_eq!(SimDuration::from_millis_f64(150.74).as_micros(), 150_740);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d * 3, SimDuration::from_micros(300));
        assert_eq!(d / 4, SimDuration::from_micros(25));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_secs(2)).to_string(),
            "2.000000s"
        );
    }

    #[test]
    fn max_time_is_after_everything() {
        assert!(SimTime::MAX > SimTime::from_micros(u64::MAX - 1));
        // Adding to MAX saturates rather than wrapping.
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }
}
