//! Per-node skewable clocks: deterministic clock drift for the simulator.
//!
//! Real fleets do not share the simulator's single virtual clock. A node's
//! local clock runs ahead or behind true time by a *skew* that combines a
//! constant offset, a bounded rate drift (so the error grows with uptime),
//! and step jitter (NTP slews and corrections re-rolled once per window).
//! [`DriftSpec`] describes such a skew as a pure function of true time and a
//! seed; [`DriftClock`] evaluates it with a monotonicity clamp, so a node's
//! local clock never runs backwards (CLOCK_MONOTONIC semantics) even when a
//! step correction jumps it backwards.
//!
//! Drift affects only the *timestamps a node reads* (`Sim::now` through a
//! skewed handle — see `Sim::with_drift`). Event delivery, timer firing, and
//! scheduling all stay on true virtual time, so a drifted run replays
//! byte-identically from its seed.

use std::cell::Cell;

use crate::time::{SimDuration, SimTime};

/// SplitMix64: a tiny, high-quality mixer for deriving per-window jitter
/// without dragging an RNG into the clock.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic clock-skew model: `local(t) = t + skew(t)` where
///
/// `skew(t) = offset_us + t·rate_ppm/10⁶ + step(t / step_window)`
///
/// and `step(w)` is a per-window value in `[-step_us, +step_us]` derived
/// from `(seed, w)`. The same spec always produces the same skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftSpec {
    /// Constant clock offset in microseconds (positive = clock runs ahead).
    pub offset_us: i64,
    /// Rate drift in parts-per-million of true elapsed time (positive =
    /// clock runs fast, accumulating `rate_ppm` µs of error per second).
    pub rate_ppm: i64,
    /// Maximum magnitude of the per-window step jitter, in microseconds.
    pub step_us: u64,
    /// How often the step jitter re-rolls.
    pub step_window: SimDuration,
    /// Seed for the step jitter.
    pub seed: u64,
}

impl DriftSpec {
    /// The identity spec: no skew at all.
    pub const NONE: DriftSpec = DriftSpec {
        offset_us: 0,
        rate_ppm: 0,
        step_us: 0,
        step_window: SimDuration::from_secs(1),
        seed: 0,
    };

    /// A seeded spec whose total skew provably stays within `max_skew`
    /// (absolute value) for every instant up to `horizon`: the budget is
    /// split half to the constant offset, a quarter to rate drift over the
    /// horizon, and a quarter to step jitter. Signs and magnitudes are
    /// drawn deterministically from `seed`, so distinct nodes seeded
    /// differently drift in different directions at different rates.
    pub fn bounded(seed: u64, max_skew: SimDuration, horizon: SimDuration) -> DriftSpec {
        let max = max_skew.as_micros();
        let offset_budget = max / 2;
        let rate_budget = max / 4;
        let step_budget = max.saturating_sub(offset_budget + rate_budget);
        let r0 = splitmix64(seed ^ 0x4452_4946_5400_0001); // "DRIFT"
        let r1 = splitmix64(seed ^ 0x4452_4946_5400_0002);
        let r2 = splitmix64(seed ^ 0x4452_4946_5400_0003);
        let pick = |r: u64, budget: u64| -> i64 {
            if budget == 0 {
                return 0;
            }
            let mag = (r >> 1) % (budget + 1);
            if r & 1 == 0 {
                mag as i64
            } else {
                -(mag as i64)
            }
        };
        let offset_us = pick(r0, offset_budget);
        // rate_ppm · horizon_secs ≤ rate_budget ⟺ rate_ppm ≤ rate_budget·10⁶/horizon_µs.
        let horizon_us = horizon.as_micros().max(1);
        let max_ppm = (u128::from(rate_budget) * 1_000_000 / u128::from(horizon_us)) as u64;
        let rate_ppm = pick(r1, max_ppm);
        let step_us = if step_budget == 0 {
            0
        } else {
            (r2 >> 1) % (step_budget + 1)
        };
        DriftSpec {
            offset_us,
            rate_ppm,
            step_us,
            step_window: SimDuration::from_millis(200),
            seed: splitmix64(seed),
        }
    }

    /// The signed skew at true time `t`, in microseconds.
    pub fn skew_at(&self, t: SimTime) -> i64 {
        let t_us = t.as_micros();
        let rate = (i128::from(t_us) * i128::from(self.rate_ppm) / 1_000_000) as i64;
        let window = t_us / self.step_window.as_micros().max(1);
        let step = if self.step_us == 0 {
            0
        } else {
            let r = splitmix64(self.seed ^ window.wrapping_mul(0x5157_27FA_11E3_C0DD));
            let mag = ((r >> 1) % (self.step_us + 1)) as i64;
            if r & 1 == 0 {
                mag
            } else {
                -mag
            }
        };
        self.offset_us.saturating_add(rate).saturating_add(step)
    }

    /// An upper bound on `|skew(t)|` for all `t ≤ horizon`.
    pub fn max_abs_skew(&self, horizon: SimDuration) -> SimDuration {
        let rate =
            u128::from(horizon.as_micros()) * self.rate_ppm.unsigned_abs() as u128 / 1_000_000;
        let total = self.offset_us.unsigned_abs() as u128 + rate + u128::from(self.step_us);
        SimDuration::from_micros(u64::try_from(total).unwrap_or(u64::MAX))
    }
}

/// Evaluates a [`DriftSpec`] with a monotonicity clamp: the local reading
/// never decreases even when a step correction would jump it backwards.
#[derive(Debug)]
pub struct DriftClock {
    spec: DriftSpec,
    last: Cell<u64>,
}

impl DriftClock {
    /// A clock following `spec`.
    pub fn new(spec: DriftSpec) -> DriftClock {
        DriftClock {
            spec,
            last: Cell::new(0),
        }
    }

    /// The spec this clock follows.
    pub fn spec(&self) -> &DriftSpec {
        &self.spec
    }

    /// The node-local reading for true time `true_now`, clamped monotone.
    pub fn local(&self, true_now: SimTime) -> SimTime {
        let raw = i128::from(true_now.as_micros()) + i128::from(self.spec.skew_at(true_now));
        let raw = u64::try_from(raw.max(0)).unwrap_or(u64::MAX);
        let clamped = raw.max(self.last.get());
        self.last.set(clamped);
        SimTime::from_micros(clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_spec_reads_true_time() {
        let c = DriftClock::new(DriftSpec::NONE);
        for us in [0u64, 1, 999, 1_000_000, u64::MAX / 2] {
            assert_eq!(c.local(SimTime::from_micros(us)).as_micros(), us);
        }
    }

    #[test]
    fn readings_are_deterministic_and_monotone() {
        let spec = DriftSpec::bounded(42, SimDuration::from_millis(5), SimDuration::from_secs(60));
        let a = DriftClock::new(spec);
        let b = DriftClock::new(spec);
        let mut prev = 0u64;
        for i in 0..10_000u64 {
            let t = SimTime::from_micros(i * 7_919); // ~79ms steps crossing windows
            let la = a.local(t);
            assert_eq!(la, b.local(t), "same spec must read identically");
            assert!(la.as_micros() >= prev, "local clock ran backwards at {t:?}");
            prev = la.as_micros();
        }
    }

    #[test]
    fn bounded_spec_respects_its_budget() {
        for seed in 0..64u64 {
            let max = SimDuration::from_millis(3);
            let horizon = SimDuration::from_secs(120);
            let spec = DriftSpec::bounded(seed, max, horizon);
            assert!(
                spec.max_abs_skew(horizon) <= max,
                "seed {seed}: analytic bound exceeded: {:?}",
                spec.max_abs_skew(horizon)
            );
            // And the bound is honest: sampled skews stay within it.
            for i in 0..240u64 {
                let t = SimTime::from_micros(i * 500_000);
                let skew = spec.skew_at(t);
                assert!(
                    skew.unsigned_abs() <= max.as_micros(),
                    "seed {seed}: |skew({t:?})| = {skew} beyond {max:?}"
                );
            }
        }
    }

    #[test]
    fn distinct_seeds_drift_differently() {
        let max = SimDuration::from_millis(5);
        let horizon = SimDuration::from_secs(60);
        let t = SimTime::from_micros(30_000_000);
        let skews: Vec<i64> = (0..8)
            .map(|s| DriftSpec::bounded(s, max, horizon).skew_at(t))
            .collect();
        assert!(
            skews.iter().any(|&s| s != skews[0]),
            "eight seeds all produced identical skew {skews:?}"
        );
    }

    #[test]
    fn backward_step_is_clamped_monotone() {
        // A pure step-jitter spec: windows re-roll signs, so raw skew jumps
        // backwards somewhere; the clock output must still be monotone.
        let spec = DriftSpec {
            offset_us: 0,
            rate_ppm: 0,
            step_us: 10_000,
            step_window: SimDuration::from_millis(1),
            seed: 7,
        };
        let c = DriftClock::new(spec);
        let mut prev = SimTime::ZERO;
        let mut saw_backward_raw = false;
        let mut prev_raw = 0i64;
        for i in 0..1_000u64 {
            let t = SimTime::from_micros(i * 1_000);
            let raw = i64::try_from(t.as_micros()).unwrap() + spec.skew_at(t);
            if raw < prev_raw {
                saw_backward_raw = true;
            }
            prev_raw = raw;
            let l = c.local(t);
            assert!(l >= prev);
            prev = l;
        }
        assert!(
            saw_backward_raw,
            "spec never stepped backwards; test is vacuous"
        );
    }
}
