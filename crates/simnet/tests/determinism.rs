//! Whole-runtime determinism: identical seeds must produce bit-identical
//! schedules, even under thousands of interleaved tasks, timers, and
//! network messages. Every experiment in this workspace rests on this.

use music_simnet::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// A stress scenario: many tasks ping-ponging messages over a lossy,
/// jittery network; returns a full trace of (virtual time, event id).
fn run_scenario(seed: u64) -> Vec<(u64, u64)> {
    let sim = Sim::new();
    let net = Network::new(
        sim.clone(),
        LatencyProfile::one_us_eu(),
        NetConfig {
            service_fixed: SimDuration::from_micros(15),
            bandwidth_bytes_per_sec: 100_000_000,
            loss: 0.02,
            jitter_frac: 0.2,
        },
        seed,
    );
    let nodes: Vec<_> = (0..12).map(|i| net.add_node(SiteId(i % 3))).collect();
    let trace: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));

    for t in 0..200u64 {
        let net = net.clone();
        let sim2 = sim.clone();
        let trace = Rc::clone(&trace);
        let from = nodes[(t % 12) as usize];
        let to = nodes[((t * 7 + 3) % 12) as usize];
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_micros(t * 131 % 10_000)).await;
            for round in 0..5u64 {
                let fut = net.rpc(from, to, 100 + (t as usize % 900), || ((), 64));
                match timeout(&sim2, SimDuration::from_millis(400), fut).await {
                    Ok(()) => trace
                        .borrow_mut()
                        .push((sim2.now().as_micros(), t * 10 + round)),
                    Err(_) => trace
                        .borrow_mut()
                        .push((sim2.now().as_micros(), u64::MAX - t)),
                }
            }
        });
    }
    sim.run();
    let out = trace.borrow().clone();
    out
}

#[test]
fn identical_seeds_produce_identical_traces() {
    let a = run_scenario(1234);
    let b = run_scenario(1234);
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b, "same seed must replay the exact same schedule");
    assert!(
        a.len() >= 900,
        "most of the 1000 rpcs complete: {}",
        a.len()
    );
}

#[test]
fn different_seeds_diverge() {
    let a = run_scenario(1);
    let b = run_scenario(2);
    // Loss and jitter differ, so the traces cannot coincide.
    assert_ne!(a, b);
}

#[test]
fn run_twice_is_idempotent_after_quiesce() {
    let sim = Sim::new();
    let sim2 = sim.clone();
    sim.spawn(async move {
        sim2.sleep(SimDuration::from_secs(1)).await;
    });
    sim.run();
    let t = sim.now();
    sim.run();
    assert_eq!(sim.now(), t, "a quiesced simulation stays quiesced");
    assert_eq!(sim.live_tasks(), 0);
}
