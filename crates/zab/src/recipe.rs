//! The standard ZooKeeper lock recipe (Curator's `InterProcessMutex`),
//! built on ephemeral-sequential children.
//!
//! Acquire: create an ephemeral-sequential node under the lock path; you
//! hold the lock when your node has the smallest sequence among the
//! children. This implementation polls `getChildren` (the simulator has no
//! watch machinery; polling at the connected server is an intra-site
//! round trip, analogous in cost to MUSIC's local `lsPeek`).
//!
//! Safety under local (stale) reads: a server that has applied your create
//! has — by zxid order — applied every earlier create too, so you can never
//! falsely conclude you are the lowest; stale *deletes* only make you wait
//! longer.

use bytes::Bytes;

use music_simnet::time::SimDuration;

use crate::ensemble::{ZkError, ZkSession};
use crate::znode::CreateMode;

/// A distributed lock over a znode directory.
#[derive(Debug)]
pub struct ZkLock<'s> {
    session: &'s ZkSession,
    base: String,
    my_path: Option<String>,
    poll: SimDuration,
}

impl<'s> ZkLock<'s> {
    /// Creates a lock handle over directory `base` (created on first
    /// acquire if missing).
    pub fn new(session: &'s ZkSession, base: impl Into<String>) -> Self {
        ZkLock {
            session,
            base: base.into(),
            my_path: None,
            poll: SimDuration::from_millis(2),
        }
    }

    /// Sets the children-polling interval.
    pub fn poll_interval(mut self, poll: SimDuration) -> Self {
        self.poll = poll;
        self
    }

    /// Whether this handle currently holds the lock.
    pub fn is_held(&self) -> bool {
        self.my_path.is_some()
    }

    /// The name of this handle's queue node, if enqueued.
    fn my_name(&self) -> Option<&str> {
        self.my_path.as_deref().and_then(|p| p.rsplit('/').next())
    }

    /// Blocks (polling) until the lock is held.
    ///
    /// # Errors
    ///
    /// [`ZkError::ConnectionLoss`] if the ensemble cannot commit the queue
    /// node.
    pub async fn acquire(&mut self) -> Result<(), ZkError> {
        if self.is_held() {
            return Ok(());
        }
        // Ensure the lock directory exists.
        match self
            .session
            .create(&self.base, Bytes::new(), CreateMode::Persistent)
            .await
        {
            Ok(_) | Err(ZkError::NodeExists) => {}
            Err(e) => return Err(e),
        }
        let path = self
            .session
            .create(
                &format!("{}/lock-", self.base),
                Bytes::new(),
                CreateMode::EphemeralSequential,
            )
            .await?;
        self.my_path = Some(path);
        let me = self.my_name().expect("just created").to_string();
        let sim = self.session.ens_sim();
        loop {
            // Read the queue and register a one-shot child watch in the
            // same round trip (the standard recipe).
            let (children, watch) = self.session.get_children_watch(&self.base).await;
            // Children are sorted; we hold the lock when we are first.
            match children.first() {
                Some(first) if *first == me => return Ok(()),
                Some(_) | None => {
                    // Someone is ahead, or our own create has not reached
                    // this server yet: sleep until the child set changes.
                    // The poll interval only bounds the (rare) case of a
                    // watch registered against an already-stale view.
                    let _ = music_simnet::combinators::timeout(&sim, self.poll * 50, watch).await;
                }
            }
        }
    }

    /// Releases the lock by deleting the queue node.
    ///
    /// # Errors
    ///
    /// [`ZkError::ConnectionLoss`]; a missing node (session expired) is
    /// treated as released.
    pub async fn release(&mut self) -> Result<(), ZkError> {
        if let Some(path) = self.my_path.take() {
            match self.session.delete(&path).await {
                Ok(()) | Err(ZkError::NoNode) => Ok(()),
                Err(e) => {
                    // Keep the handle held so the caller can retry the
                    // release (otherwise the queue node leaks and blocks
                    // every later contender).
                    self.my_path = Some(path);
                    Err(e)
                }
            }
        } else {
            Ok(())
        }
    }
}
