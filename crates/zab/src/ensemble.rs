//! The replicated ensemble: Zab-style total-order broadcast with a stable
//! leader, plus client sessions.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;

use music_simnet::combinators::{quorum, timeout};
use music_simnet::net::{Network, NodeId};
use music_simnet::time::SimDuration;

use crate::znode::{CreateMode, TreeError, Znode, ZnodeTree};

/// Fixed per-message envelope for the cost model.
const HEADER: usize = 48;

/// Errors surfaced to ZooKeeper clients.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ZkError {
    /// Create of an existing path.
    NodeExists,
    /// Operation on a missing path.
    NoNode,
    /// Delete of a non-empty node.
    NotEmpty,
    /// The ensemble could not commit within the timeout.
    ConnectionLoss,
}

impl std::fmt::Display for ZkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZkError::NodeExists => write!(f, "node already exists"),
            ZkError::NoNode => write!(f, "no such node"),
            ZkError::NotEmpty => write!(f, "node has children"),
            ZkError::ConnectionLoss => write!(f, "connection loss"),
        }
    }
}

impl std::error::Error for ZkError {}

impl From<TreeError> for ZkError {
    fn from(e: TreeError) -> Self {
        match e {
            TreeError::NodeExists => ZkError::NodeExists,
            TreeError::NoNode => ZkError::NoNode,
            TreeError::NotEmpty => ZkError::NotEmpty,
        }
    }
}

/// A sequenced transaction (created at the leader, applied everywhere in
/// zxid order).
#[derive(Clone, Debug)]
enum Txn {
    Create {
        actual_path: String,
        data: Bytes,
        mode: CreateMode,
        session: u64,
    },
    SetData {
        path: String,
        data: Bytes,
    },
    Delete {
        path: String,
    },
}

impl Txn {
    fn wire_bytes(&self) -> usize {
        HEADER
            + match self {
                Txn::Create {
                    actual_path, data, ..
                } => actual_path.len() + data.len(),
                Txn::SetData { path, data } => path.len() + data.len(),
                Txn::Delete { path } => path.len(),
            }
    }
}

struct ServerState {
    tree: ZnodeTree,
    last_applied: u64,
    pending: BTreeMap<u64, Txn>,
}

impl ServerState {
    fn new() -> Self {
        ServerState {
            tree: ZnodeTree::new(),
            last_applied: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Buffers a committed txn and applies everything in-order; returns
    /// the txns actually applied this call (for watch triggering).
    fn commit(&mut self, zxid: u64, txn: Txn) -> Vec<Txn> {
        self.pending.insert(zxid, txn);
        let mut applied = Vec::new();
        while let Some(entry) = self.pending.first_entry() {
            if *entry.key() != self.last_applied + 1 {
                break;
            }
            let (zxid, txn) = self.pending.pop_first().expect("non-empty");
            // Application is infallible: the leader validated against its
            // own tree, and all trees evolve identically in zxid order.
            match &txn {
                Txn::Create {
                    actual_path,
                    data,
                    mode,
                    session,
                } => {
                    // Recreate with the leader-assigned name: bypass the
                    // sequential logic by creating the exact path.
                    let mode = if mode.is_ephemeral() {
                        CreateMode::Ephemeral
                    } else {
                        CreateMode::Persistent
                    };
                    let _ = self
                        .tree
                        .create(actual_path, data.clone(), mode, Some(*session));
                }
                Txn::SetData { path, data } => {
                    let _ = self.tree.set_data(path, data.clone());
                }
                Txn::Delete { path } => {
                    let _ = self.tree.delete(path);
                }
            }
            self.last_applied = zxid;
            applied.push(txn);
        }
        applied
    }
}

/// What a watch observes (one-shot, like ZooKeeper's).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum WatchKind {
    /// Data change or deletion of the path.
    Data(String),
    /// Child set change under the path.
    Children(String),
}

/// Client-side state of a registered watch.
#[derive(Debug, Default)]
struct WatchCell {
    fired: Cell<bool>,
    waker: RefCell<Option<std::task::Waker>>,
}

impl WatchCell {
    fn fire(&self) {
        self.fired.set(true);
        if let Some(w) = self.waker.borrow_mut().take() {
            w.wake();
        }
    }
}

/// A pending one-shot watch notification target.
struct WatchEntry {
    client: NodeId,
    cell: Rc<WatchCell>,
}

struct Inner {
    net: Network,
    nodes: Vec<NodeId>,
    servers: Vec<Rc<RefCell<ServerState>>>,
    /// Leader's shadow tree used only for validation and sequence-suffix
    /// assignment at proposal time (it evolves exactly like the replicas).
    leader_tree: RefCell<ZnodeTree>,
    leader: usize,
    next_zxid: Cell<u64>,
    next_session: Cell<u64>,
    op_timeout: SimDuration,
    /// Watches registered per (server, aspect).
    watches: RefCell<std::collections::HashMap<(usize, WatchKind), Vec<WatchEntry>>>,
    /// Set when the leader fails to replicate to a quorum: a real leader
    /// without a quorum steps down, and this stable-leader model (no
    /// elections) has nobody to take over — so the ensemble stops
    /// accepting writes rather than letting the leader's shadow tree
    /// drift ahead of the replicas.
    degraded: Cell<bool>,
}

/// A ZooKeeper-like ensemble with a stable leader at `nodes[0]`.
#[derive(Clone)]
pub struct ZkEnsemble {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for ZkEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkEnsemble")
            .field("nodes", &self.inner.nodes)
            .field("leader", &self.inner.leader)
            .finish()
    }
}

impl ZkEnsemble {
    /// Creates an ensemble over `nodes`; `nodes[0]` is the stable leader.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(net: Network, nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "ensemble needs at least one server");
        let servers = (0..nodes.len())
            .map(|_| Rc::new(RefCell::new(ServerState::new())))
            .collect();
        ZkEnsemble {
            inner: Rc::new(Inner {
                net,
                nodes,
                servers,
                leader_tree: RefCell::new(ZnodeTree::new()),
                leader: 0,
                next_zxid: Cell::new(0),
                next_session: Cell::new(1),
                op_timeout: SimDuration::from_secs(4),
                watches: RefCell::new(std::collections::HashMap::new()),
                degraded: Cell::new(false),
            }),
        }
    }

    /// Whether the leader lost its quorum and stepped down (writes are
    /// refused from then on; see `Inner::degraded`).
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.get()
    }

    fn parent_of(path: &str) -> String {
        match path.rfind('/') {
            Some(0) | None => "/".to_string(),
            Some(i) => path[..i].to_string(),
        }
    }

    /// Applies committed txns at `server_idx` and fires any watches the
    /// applications trigger (notifications travel server → client).
    fn commit_at(&self, server_idx: usize, zxid: u64, txn: Txn) {
        let applied = self.inner.servers[server_idx]
            .borrow_mut()
            .commit(zxid, txn);
        for txn in applied {
            let kinds: Vec<WatchKind> = match &txn {
                Txn::Create { actual_path, .. } => {
                    vec![WatchKind::Children(Self::parent_of(actual_path))]
                }
                Txn::SetData { path, .. } => vec![WatchKind::Data(path.clone())],
                Txn::Delete { path } => vec![
                    WatchKind::Data(path.clone()),
                    WatchKind::Children(Self::parent_of(path)),
                ],
            };
            for kind in kinds {
                let entries = self
                    .inner
                    .watches
                    .borrow_mut()
                    .remove(&(server_idx, kind))
                    .unwrap_or_default();
                for entry in entries {
                    let net = self.inner.net.clone();
                    let server_node = self.inner.nodes[server_idx];
                    self.inner.net.sim().spawn(async move {
                        net.transmit(server_node, entry.client, HEADER).await;
                        entry.cell.fire();
                    });
                }
            }
        }
    }

    /// Node id of the stable leader.
    pub fn leader_node(&self) -> NodeId {
        self.inner.nodes[self.inner.leader]
    }

    /// Opens a session from `client_node`, connected to the closest server
    /// (as ZooKeeper clients do).
    pub fn connect(&self, client_node: NodeId) -> ZkSession {
        let server_idx = (0..self.inner.nodes.len())
            .min_by_key(|&i| {
                (
                    self.inner.net.propagation(client_node, self.inner.nodes[i]),
                    i,
                )
            })
            .expect("non-empty ensemble");
        let id = self.inner.next_session.get();
        self.inner.next_session.set(id + 1);
        ZkSession {
            ens: self.clone(),
            client_node,
            server_idx,
            id,
            closed: Cell::new(false),
        }
    }

    /// Validates + sequences a request at the leader, returning the zxid
    /// and the concrete txn.
    fn sequence(&self, req: Request, session: u64) -> Result<(u64, Txn, String), ZkError> {
        let mut tree = self.inner.leader_tree.borrow_mut();
        let (txn, reply_path) = match req {
            Request::Create { path, data, mode } => {
                let actual = tree.create(&path, data.clone(), mode, Some(session))?;
                (
                    Txn::Create {
                        actual_path: actual.clone(),
                        data,
                        mode,
                        session,
                    },
                    actual,
                )
            }
            Request::SetData { path, data } => {
                tree.set_data(&path, data.clone())?;
                (
                    Txn::SetData {
                        path: path.clone(),
                        data,
                    },
                    path,
                )
            }
            Request::Delete { path } => {
                tree.delete(&path)?;
                (Txn::Delete { path: path.clone() }, path)
            }
        };
        let zxid = self.inner.next_zxid.get() + 1;
        self.inner.next_zxid.set(zxid);
        Ok((zxid, txn, reply_path))
    }

    /// The full write path: forward → propose → quorum ack → commit.
    async fn submit(
        &self,
        client_node: NodeId,
        server_idx: usize,
        session: u64,
        req: Request,
    ) -> Result<String, ZkError> {
        let inner = &self.inner;
        let net = &inner.net;
        let sim = net.sim().clone();
        let leader_node = self.leader_node();
        let server_node = inner.nodes[server_idx];
        let req_bytes = req.wire_bytes();

        if inner.degraded.get() {
            return Err(ZkError::ConnectionLoss);
        }

        // Client → connected server (→ leader if connected to a follower).
        net.transmit(client_node, server_node, req_bytes).await;
        if server_idx != inner.leader {
            net.transmit(server_node, leader_node, req_bytes).await;
        }

        // Leader: validate, assign zxid, build the txn.
        let (zxid, txn, reply_path) = match self.sequence(req, session) {
            Ok(v) => v,
            Err(e) => {
                // Error reply travels back over the network too.
                if server_idx != inner.leader {
                    net.transmit(leader_node, server_node, HEADER).await;
                }
                net.transmit(server_node, client_node, HEADER).await;
                return Err(e);
            }
        };

        // Propose to all followers; quorum counts the leader itself.
        let txn_bytes = txn.wire_bytes();
        let mut acks = Vec::new();
        for (i, &follower) in inner.nodes.iter().enumerate() {
            if i == inner.leader {
                continue;
            }
            let net = net.clone();
            acks.push(sim.spawn(async move {
                net.transmit(leader_node, follower, txn_bytes).await;
                net.transmit(follower, leader_node, HEADER).await;
            }));
        }
        let need = (inner.nodes.len() / 2 + 1).saturating_sub(1); // minus leader self-ack
        if need > 0
            && timeout(&sim, inner.op_timeout, quorum(acks, need))
                .await
                .is_err()
        {
            // No quorum: the leader steps down (its shadow tree is now
            // ahead of the replicas and must not keep validating writes).
            inner.degraded.set(true);
            return Err(ZkError::ConnectionLoss);
        }

        // Commit: apply at the leader, broadcast COMMIT to followers.
        self.commit_at(inner.leader, zxid, txn.clone());
        let mut committed_at_server = inner.leader == server_idx;
        let mut commit_handles = Vec::new();
        for (i, &follower) in inner.nodes.iter().enumerate() {
            if i == inner.leader {
                continue;
            }
            let net2 = net.clone();
            let this = self.clone();
            let txn2 = txn.clone();
            let h = sim.spawn(async move {
                net2.transmit(leader_node, follower, HEADER).await;
                this.commit_at(i, zxid, txn2);
            });
            if i == server_idx {
                // The connected server must apply before replying.
                timeout(&sim, inner.op_timeout, h)
                    .await
                    .map_err(|_| ZkError::ConnectionLoss)?;
                committed_at_server = true;
            } else {
                commit_handles.push(h); // detached
            }
        }
        debug_assert!(committed_at_server);

        // Reply to the client via the connected server.
        if server_idx != inner.leader {
            // (commit doubled as the leader→server hop above)
        } else {
            // leader == connected server: nothing extra.
        }
        net.transmit(server_node, client_node, HEADER).await;
        drop(commit_handles);
        Ok(reply_path)
    }

    /// Local (possibly stale) read at a server.
    async fn read_at<R: 'static>(
        &self,
        client_node: NodeId,
        server_idx: usize,
        resp_bytes_hint: usize,
        f: impl FnOnce(&ZnodeTree) -> R,
    ) -> R {
        let net = &self.inner.net;
        let server_node = self.inner.nodes[server_idx];
        let state = Rc::clone(&self.inner.servers[server_idx]);
        net.rpc(client_node, server_node, HEADER, move || {
            let out = f(&state.borrow().tree);
            (out, resp_bytes_hint)
        })
        .await
    }

    /// Local read that also registers a one-shot watch at the server.
    async fn read_with_watch<R: 'static>(
        &self,
        client_node: NodeId,
        server_idx: usize,
        kind: WatchKind,
        resp_bytes_hint: usize,
        f: impl FnOnce(&ZnodeTree) -> R + 'static,
    ) -> (R, Watch) {
        let cell = Rc::new(WatchCell::default());
        let cell2 = Rc::clone(&cell);
        let this = self.clone();
        let out = self
            .read_at(client_node, server_idx, resp_bytes_hint, move |tree| {
                this.inner
                    .watches
                    .borrow_mut()
                    .entry((server_idx, kind))
                    .or_default()
                    .push(WatchEntry {
                        client: client_node,
                        cell: cell2,
                    });
                f(tree)
            })
            .await;
        (out, Watch { cell })
    }

    /// Direct view of a server's tree (tests/instrumentation).
    pub fn peek_tree<R>(&self, server_idx: usize, f: impl FnOnce(&ZnodeTree) -> R) -> R {
        f(&self.inner.servers[server_idx].borrow().tree)
    }
}

/// A one-shot watch notification, as delivered by ZooKeeper: resolves when
/// the watched aspect changes *at the connected server* (the notification
/// travels the network like any message).
#[derive(Debug)]
pub struct Watch {
    cell: Rc<WatchCell>,
}

impl Watch {
    /// Whether the watch already fired.
    pub fn fired(&self) -> bool {
        self.cell.fired.get()
    }
}

impl std::future::Future for Watch {
    type Output = ();
    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        if self.cell.fired.get() {
            std::task::Poll::Ready(())
        } else {
            *self.cell.waker.borrow_mut() = Some(cx.waker().clone());
            std::task::Poll::Pending
        }
    }
}

enum Request {
    Create {
        path: String,
        data: Bytes,
        mode: CreateMode,
    },
    SetData {
        path: String,
        data: Bytes,
    },
    Delete {
        path: String,
    },
}

impl Request {
    fn wire_bytes(&self) -> usize {
        HEADER
            + match self {
                Request::Create { path, data, .. } => path.len() + data.len(),
                Request::SetData { path, data } => path.len() + data.len(),
                Request::Delete { path } => path.len(),
            }
    }
}

/// A client session connected to one server of the ensemble.
#[derive(Debug)]
pub struct ZkSession {
    ens: ZkEnsemble,
    client_node: NodeId,
    server_idx: usize,
    id: u64,
    closed: Cell<bool>,
}

impl ZkSession {
    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The simulation driving this session's ensemble (used by recipes for
    /// poll timing).
    pub fn ens_sim(&self) -> music_simnet::executor::Sim {
        self.ens.inner.net.sim().clone()
    }

    /// Index of the server this session is connected to.
    pub fn server_idx(&self) -> usize {
        self.server_idx
    }

    /// Creates a znode; returns the actual path (with sequence suffix for
    /// sequential modes).
    ///
    /// # Errors
    ///
    /// [`ZkError::NodeExists`], [`ZkError::NoNode`] (missing parent), or
    /// [`ZkError::ConnectionLoss`].
    pub async fn create(
        &self,
        path: &str,
        data: Bytes,
        mode: CreateMode,
    ) -> Result<String, ZkError> {
        self.ens
            .submit(
                self.client_node,
                self.server_idx,
                self.id,
                Request::Create {
                    path: path.to_string(),
                    data,
                    mode,
                },
            )
            .await
    }

    /// Overwrites a znode's data.
    ///
    /// # Errors
    ///
    /// [`ZkError::NoNode`] or [`ZkError::ConnectionLoss`].
    pub async fn set_data(&self, path: &str, data: Bytes) -> Result<(), ZkError> {
        self.ens
            .submit(
                self.client_node,
                self.server_idx,
                self.id,
                Request::SetData {
                    path: path.to_string(),
                    data,
                },
            )
            .await
            .map(|_| ())
    }

    /// Deletes a znode.
    ///
    /// # Errors
    ///
    /// [`ZkError::NoNode`], [`ZkError::NotEmpty`], or
    /// [`ZkError::ConnectionLoss`].
    pub async fn delete(&self, path: &str) -> Result<(), ZkError> {
        self.ens
            .submit(
                self.client_node,
                self.server_idx,
                self.id,
                Request::Delete {
                    path: path.to_string(),
                },
            )
            .await
            .map(|_| ())
    }

    /// Reads a znode's data from the connected server (possibly stale).
    pub async fn get_data(&self, path: &str) -> Option<Bytes> {
        let path = path.to_string();
        self.ens
            .read_at(self.client_node, self.server_idx, 256, move |t| {
                t.get(&path).map(|n: &Znode| n.data.clone())
            })
            .await
    }

    /// Sorted child names of `path` from the connected server (possibly
    /// stale).
    pub async fn get_children(&self, path: &str) -> Vec<String> {
        let path = path.to_string();
        self.ens
            .read_at(self.client_node, self.server_idx, 256, move |t| {
                t.children(&path)
            })
            .await
    }

    /// Like [`ZkSession::get_data`], additionally registering a one-shot
    /// [`Watch`] that resolves when the node's data changes or the node is
    /// deleted (as seen by the connected server).
    pub async fn get_data_watch(&self, path: &str) -> (Option<Bytes>, Watch) {
        let p = path.to_string();
        self.ens
            .read_with_watch(
                self.client_node,
                self.server_idx,
                WatchKind::Data(path.to_string()),
                256,
                move |t| t.get(&p).map(|n: &Znode| n.data.clone()),
            )
            .await
    }

    /// Like [`ZkSession::get_children`], additionally registering a
    /// one-shot [`Watch`] on the child set.
    pub async fn get_children_watch(&self, path: &str) -> (Vec<String>, Watch) {
        let p = path.to_string();
        self.ens
            .read_with_watch(
                self.client_node,
                self.server_idx,
                WatchKind::Children(path.to_string()),
                256,
                move |t| t.children(&p),
            )
            .await
    }

    /// Closes the session, deleting its ephemerals (replicated like any
    /// other writes).
    ///
    /// # Errors
    ///
    /// [`ZkError::ConnectionLoss`] if cleanup writes cannot commit.
    pub async fn close(self) -> Result<(), ZkError> {
        self.closed.set(true);
        let paths = {
            let tree = self.ens.inner.leader_tree.borrow();
            tree.ephemerals_of(self.id)
        };
        for p in paths {
            self.ens
                .submit(
                    self.client_node,
                    self.server_idx,
                    self.id,
                    Request::Delete { path: p },
                )
                .await?;
        }
        Ok(())
    }
}
