//! # music-zab
//!
//! A ZooKeeper-like coordination service used as the sequential-consistency
//! baseline of the MUSIC evaluation (Fig. 6): a replicated znode tree kept
//! consistent by a Zab-style totally ordered broadcast with a **stable
//! leader** (the paper observed a stable leader throughout its ZooKeeper
//! runs).
//!
//! Semantics reproduced:
//!
//! * writes (`create`, `setData`, `delete`) are forwarded to the leader,
//!   sequenced by zxid, proposed to all followers, and acknowledged after a
//!   quorum — one WAN round trip from the leader, plus the forwarding hop;
//! * reads are served **locally** by the server a session is connected to
//!   (possibly stale, exactly as in ZooKeeper without `sync`);
//! * sequential and ephemeral znodes, and the standard lock recipe built
//!   on ephemeral-sequential children ([`recipe::ZkLock`]).
//!
//! Every write funnels through the single leader's service queue — the
//! structural reason the paper finds ZooKeeper falling behind MUSIC's
//! coordinator-spread quorum writes at large batch and data sizes.
//!
//! ## Quickstart
//!
//! ```
//! use music_simnet::prelude::*;
//! use music_zab::{CreateMode, ZkEnsemble};
//! use bytes::Bytes;
//!
//! let sim = Sim::new();
//! let net = Network::new(sim.clone(), LatencyProfile::one_us(), NetConfig::default(), 7);
//! let servers: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
//! let client = net.add_node(SiteId(1));
//! let ens = ZkEnsemble::new(net, servers);
//!
//! sim.block_on(async move {
//!     let session = ens.connect(client);
//!     session.create("/cfg", Bytes::from_static(b"v1"), CreateMode::Persistent)
//!         .await
//!         .unwrap();
//!     let (data, watch) = session.get_data_watch("/cfg").await;
//!     assert_eq!(data, Some(Bytes::from_static(b"v1")));
//!     session.set_data("/cfg", Bytes::from_static(b"v2")).await.unwrap();
//!     watch.await; // one-shot notification, delivered over the network
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod recipe;
pub mod znode;

pub use ensemble::{Watch, ZkEnsemble, ZkError, ZkSession};
pub use recipe::ZkLock;
pub use znode::{CreateMode, Znode, ZnodeTree};
