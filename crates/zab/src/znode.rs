//! The znode tree: hierarchical key space with versions, sequential
//! counters, and ephemeral owners.

use std::collections::HashMap;

use bytes::Bytes;

/// How a znode is created.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CreateMode {
    /// Plain persistent node.
    Persistent,
    /// Persistent node whose name gets a monotonically increasing suffix.
    PersistentSequential,
    /// Node deleted automatically when its owning session closes.
    Ephemeral,
    /// Ephemeral + sequential — the lock-recipe workhorse.
    EphemeralSequential,
}

impl CreateMode {
    /// Whether the name receives a sequence suffix.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }

    /// Whether the node dies with its session.
    pub fn is_ephemeral(self) -> bool {
        matches!(
            self,
            CreateMode::Ephemeral | CreateMode::EphemeralSequential
        )
    }
}

/// One node of the tree.
#[derive(Clone, Debug)]
pub struct Znode {
    /// Payload.
    pub data: Bytes,
    /// Data version, incremented on every `setData`.
    pub version: u64,
    /// Children-change version (drives sequential suffixes).
    pub cversion: u64,
    /// Owning session for ephemeral nodes.
    pub ephemeral_owner: Option<u64>,
}

/// A flat-map znode tree (children resolved by path prefix).
///
/// Deterministic and replica-deterministic: the same transaction sequence
/// applied to two trees yields identical trees.
///
/// # Examples
///
/// ```
/// use music_zab::znode::{CreateMode, ZnodeTree};
/// use bytes::Bytes;
///
/// let mut t = ZnodeTree::new();
/// t.create("/locks", Bytes::new(), CreateMode::Persistent, None).unwrap();
/// let p1 = t.create("/locks/lock-", Bytes::new(), CreateMode::EphemeralSequential, Some(1)).unwrap();
/// let p2 = t.create("/locks/lock-", Bytes::new(), CreateMode::EphemeralSequential, Some(2)).unwrap();
/// assert!(p2 > p1, "sequence suffixes increase");
/// assert_eq!(t.children("/locks").len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ZnodeTree {
    nodes: HashMap<String, Znode>,
}

/// Tree-level errors (mirroring ZooKeeper's `KeeperException` codes).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TreeError {
    /// Create of an existing path.
    NodeExists,
    /// Operation on a missing path (or missing parent).
    NoNode,
    /// Delete of a node that still has children.
    NotEmpty,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::NodeExists => write!(f, "node already exists"),
            TreeError::NoNode => write!(f, "no such node"),
            TreeError::NotEmpty => write!(f, "node has children"),
        }
    }
}

impl std::error::Error for TreeError {}

impl Default for ZnodeTree {
    fn default() -> Self {
        Self::new()
    }
}

fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) => "/",
        Some(i) => &path[..i],
        None => "/",
    }
}

impl ZnodeTree {
    /// A tree containing only the root `/`.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(
            "/".to_string(),
            Znode {
                data: Bytes::new(),
                version: 0,
                cversion: 0,
                ephemeral_owner: None,
            },
        );
        ZnodeTree { nodes }
    }

    /// Creates a node, returning the **actual** path (sequence suffix
    /// appended for sequential modes).
    ///
    /// # Errors
    ///
    /// [`TreeError::NodeExists`] for duplicate non-sequential paths,
    /// [`TreeError::NoNode`] if the parent is missing.
    pub fn create(
        &mut self,
        path: &str,
        data: Bytes,
        mode: CreateMode,
        session: Option<u64>,
    ) -> Result<String, TreeError> {
        assert!(path.starts_with('/') && path.len() > 1, "bad path: {path}");
        let parent = parent_of(path).to_string();
        let cversion = {
            let p = self.nodes.get_mut(&parent).ok_or(TreeError::NoNode)?;
            let c = p.cversion;
            p.cversion += 1;
            c
        };
        let actual = if mode.is_sequential() {
            format!("{path}{cversion:010}")
        } else {
            path.to_string()
        };
        if self.nodes.contains_key(&actual) {
            return Err(TreeError::NodeExists);
        }
        self.nodes.insert(
            actual.clone(),
            Znode {
                data,
                version: 0,
                cversion: 0,
                ephemeral_owner: if mode.is_ephemeral() { session } else { None },
            },
        );
        Ok(actual)
    }

    /// Overwrites a node's data, bumping its version.
    ///
    /// # Errors
    ///
    /// [`TreeError::NoNode`] if the path is missing.
    pub fn set_data(&mut self, path: &str, data: Bytes) -> Result<u64, TreeError> {
        let n = self.nodes.get_mut(path).ok_or(TreeError::NoNode)?;
        n.data = data;
        n.version += 1;
        Ok(n.version)
    }

    /// Reads a node.
    pub fn get(&self, path: &str) -> Option<&Znode> {
        self.nodes.get(path)
    }

    /// Deletes a leaf node.
    ///
    /// # Errors
    ///
    /// [`TreeError::NoNode`] if missing, [`TreeError::NotEmpty`] if it has
    /// children.
    pub fn delete(&mut self, path: &str) -> Result<(), TreeError> {
        if !self.nodes.contains_key(path) {
            return Err(TreeError::NoNode);
        }
        if !self.children(path).is_empty() {
            return Err(TreeError::NotEmpty);
        }
        self.nodes.remove(path);
        Ok(())
    }

    /// Sorted child *names* (not full paths) of `path`.
    pub fn children(&self, path: &str) -> Vec<String> {
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut out: Vec<String> = self
            .nodes
            .keys()
            .filter(|k| k.starts_with(&prefix) && *k != path && !k[prefix.len()..].contains('/'))
            .map(|k| k[prefix.len()..].to_string())
            .collect();
        out.sort_unstable();
        out
    }

    /// Paths of all ephemerals owned by `session` (for session-close
    /// cleanup), sorted.
    pub fn ephemerals_of(&self, session: u64) -> Vec<String> {
        let mut out: Vec<String> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.ephemeral_owner == Some(session))
            .map(|(k, _)| k.clone())
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn create_get_set_delete_cycle() {
        let mut t = ZnodeTree::new();
        t.create("/a", b("1"), CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(t.get("/a").unwrap().data, b("1"));
        assert_eq!(t.set_data("/a", b("2")).unwrap(), 1);
        assert_eq!(t.get("/a").unwrap().version, 1);
        t.delete("/a").unwrap();
        assert!(t.get("/a").is_none());
    }

    #[test]
    fn create_requires_parent() {
        let mut t = ZnodeTree::new();
        assert_eq!(
            t.create("/a/b", b(""), CreateMode::Persistent, None),
            Err(TreeError::NoNode)
        );
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut t = ZnodeTree::new();
        t.create("/a", b(""), CreateMode::Persistent, None).unwrap();
        assert_eq!(
            t.create("/a", b(""), CreateMode::Persistent, None),
            Err(TreeError::NodeExists)
        );
    }

    #[test]
    fn delete_of_parent_with_children_rejected() {
        let mut t = ZnodeTree::new();
        t.create("/a", b(""), CreateMode::Persistent, None).unwrap();
        t.create("/a/b", b(""), CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(t.delete("/a"), Err(TreeError::NotEmpty));
        t.delete("/a/b").unwrap();
        t.delete("/a").unwrap();
    }

    #[test]
    fn sequential_suffixes_strictly_increase_even_after_deletes() {
        let mut t = ZnodeTree::new();
        t.create("/l", b(""), CreateMode::Persistent, None).unwrap();
        let p1 = t
            .create("/l/n-", b(""), CreateMode::PersistentSequential, None)
            .unwrap();
        t.delete(&p1).unwrap();
        let p2 = t
            .create("/l/n-", b(""), CreateMode::PersistentSequential, None)
            .unwrap();
        assert!(p2 > p1, "cversion never regresses: {p1} then {p2}");
    }

    #[test]
    fn children_are_sorted_names() {
        let mut t = ZnodeTree::new();
        t.create("/l", b(""), CreateMode::Persistent, None).unwrap();
        t.create("/l/b", b(""), CreateMode::Persistent, None)
            .unwrap();
        t.create("/l/a", b(""), CreateMode::Persistent, None)
            .unwrap();
        t.create("/l/a/deep", b(""), CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(t.children("/l"), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(t.children("/"), vec!["l".to_string()]);
    }

    #[test]
    fn ephemerals_tracked_per_session() {
        let mut t = ZnodeTree::new();
        t.create("/l", b(""), CreateMode::Persistent, None).unwrap();
        t.create("/l/e1", b(""), CreateMode::Ephemeral, Some(7))
            .unwrap();
        let seq = t
            .create("/l/e-", b(""), CreateMode::EphemeralSequential, Some(7))
            .unwrap();
        t.create("/l/other", b(""), CreateMode::Ephemeral, Some(8))
            .unwrap();
        let mine = t.ephemerals_of(7);
        assert_eq!(
            mine,
            vec!["/l/e-0000000001".to_string(), "/l/e1".to_string()]
        );
        assert_eq!(seq, "/l/e-0000000001");
    }

    #[test]
    fn determinism_same_ops_same_tree() {
        let ops = |t: &mut ZnodeTree| {
            t.create("/x", b("d"), CreateMode::Persistent, None)
                .unwrap();
            t.create("/x/s-", b(""), CreateMode::PersistentSequential, None)
                .unwrap();
            t.set_data("/x", b("d2")).unwrap();
        };
        let mut t1 = ZnodeTree::new();
        let mut t2 = ZnodeTree::new();
        ops(&mut t1);
        ops(&mut t2);
        assert_eq!(t1.len(), t2.len());
        assert_eq!(t1.get("/x").unwrap().version, t2.get("/x").unwrap().version);
        assert_eq!(t1.children("/x"), t2.children("/x"));
    }
}
