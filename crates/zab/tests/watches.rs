//! Watch semantics: one-shot firing on data changes, child changes, and
//! deletions, delivered over the network to the registering client.

use bytes::Bytes;
use music_simnet::prelude::*;
use music_zab::{CreateMode, ZkEnsemble};

fn fixture() -> (Sim, ZkEnsemble, Vec<NodeId>) {
    let sim = Sim::new();
    let cfg = NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    };
    let net = Network::new(sim.clone(), LatencyProfile::one_us(), cfg, 41);
    let nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let clients: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let ens = ZkEnsemble::new(net, nodes);
    (sim, ens, clients)
}

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

#[test]
fn data_watch_fires_on_set_data() {
    let (sim, ens, clients) = fixture();
    let me = clients[0];
    sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/n", b("v0"), CreateMode::Persistent)
            .await
            .unwrap();
        let (data, watch) = s.get_data_watch("/n").await;
        assert_eq!(data, Some(b("v0")));
        assert!(!watch.fired());
        s.set_data("/n", b("v1")).await.unwrap();
        watch.await; // resolves after the change reaches the server + client
        assert_eq!(s.get_data("/n").await, Some(b("v1")));
    });
}

#[test]
fn data_watch_fires_on_delete() {
    let (sim, ens, clients) = fixture();
    let me = clients[1];
    sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/gone", b(""), CreateMode::Persistent)
            .await
            .unwrap();
        let (_, watch) = s.get_data_watch("/gone").await;
        s.delete("/gone").await.unwrap();
        watch.await;
        assert_eq!(s.get_data("/gone").await, None);
    });
}

#[test]
fn children_watch_fires_once_per_registration() {
    let (sim, ens, clients) = fixture();
    let me = clients[0];
    sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/dir", b(""), CreateMode::Persistent)
            .await
            .unwrap();
        let (children, watch) = s.get_children_watch("/dir").await;
        assert!(children.is_empty());
        s.create("/dir/a", b(""), CreateMode::Persistent)
            .await
            .unwrap();
        watch.await;
        // One-shot: a new change needs a new registration.
        let (children, watch2) = s.get_children_watch("/dir").await;
        assert_eq!(children, vec!["a".to_string()]);
        s.create("/dir/b", b(""), CreateMode::Persistent)
            .await
            .unwrap();
        watch2.await;
        assert_eq!(s.get_children("/dir").await.len(), 2);
    });
}

#[test]
fn watch_fires_at_remote_followers_too() {
    let (sim, ens, clients) = fixture();
    let (writer, watcher) = (clients[0], clients[2]);
    sim.block_on(async move {
        let w = ens.connect(writer);
        w.create("/x", b("0"), CreateMode::Persistent)
            .await
            .unwrap();
        let sess = ens.connect(watcher); // connected to the Oregon follower
        let (_, watch) = sess.get_data_watch("/x").await;
        let t0 = sess.ens_sim().now();
        w.set_data("/x", b("1")).await.unwrap();
        watch.await;
        // The notification waited for the commit to reach the follower,
        // then crossed the follower→client (intra-site) hop.
        let elapsed = sess.ens_sim().now() - t0;
        assert!(elapsed.as_millis() >= 30, "took {elapsed}");
    });
}

#[test]
fn unrelated_changes_do_not_fire_watches() {
    let (sim, ens, clients) = fixture();
    let me = clients[0];
    sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/a", b(""), CreateMode::Persistent).await.unwrap();
        s.create("/b", b(""), CreateMode::Persistent).await.unwrap();
        let (_, watch) = s.get_data_watch("/a").await;
        s.set_data("/b", b("other")).await.unwrap();
        assert!(!watch.fired(), "watch on /a must ignore /b");
    });
}
