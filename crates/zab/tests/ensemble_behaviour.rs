//! Ensemble behaviour: replication order, latency structure, the lock
//! recipe, and ephemeral cleanup.

use bytes::Bytes;
use music_simnet::prelude::*;
use music_zab::{CreateMode, ZkEnsemble, ZkError, ZkLock};

struct Fixture {
    sim: Sim,
    net: Network,
    ens: ZkEnsemble,
    servers: Vec<NodeId>,
    clients: Vec<NodeId>,
}

fn fixture() -> Fixture {
    let sim = Sim::new();
    let cfg = NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    };
    let net = Network::new(sim.clone(), LatencyProfile::one_us(), cfg, 21);
    let servers: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let clients: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let ens = ZkEnsemble::new(net.clone(), servers.clone());
    Fixture {
        sim,
        net,
        ens,
        servers,
        clients,
    }
}

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

#[test]
fn write_then_read_round_trips() {
    let f = fixture();
    let (ens, me) = (f.ens.clone(), f.clients[0]);
    f.sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/app", b("cfg"), CreateMode::Persistent)
            .await
            .unwrap();
        s.set_data("/app", b("cfg2")).await.unwrap();
        assert_eq!(s.get_data("/app").await, Some(b("cfg2")));
    });
}

#[test]
fn leader_site_write_takes_one_wan_rtt() {
    let f = fixture();
    let (ens, me, sim) = (f.ens.clone(), f.clients[0], f.sim.clone());
    let elapsed = f.sim.block_on(async move {
        let s = ens.connect(me); // connected to the leader (same site)
        let t0 = sim.now();
        s.create("/n", b("x"), CreateMode::Persistent)
            .await
            .unwrap();
        sim.now() - t0
    });
    // client->leader intra (0.2) + propose/ack to the nearer follower
    // (Ohio–N.Cal RTT 53.79) ≈ one WAN RTT.
    assert_eq!(elapsed.as_micros(), 200 + 53_790);
}

#[test]
fn follower_site_write_pays_the_forwarding_hop() {
    let f = fixture();
    let (ens, me, sim) = (f.ens.clone(), f.clients[2], f.sim.clone());
    let elapsed = f.sim.block_on(async move {
        let s = ens.connect(me); // Oregon follower
        let t0 = sim.now();
        s.create("/n", b("x"), CreateMode::Persistent)
            .await
            .unwrap();
        sim.now() - t0
    });
    // intra hop + forward Oregon->Ohio (36.07) + propose quorum (53.79/2
    // each way to N.Cal = full RTT 53.79... the quorum ack is the nearer
    // follower) + commit back Ohio->Oregon (36.07) + intra hop.
    assert_eq!(elapsed.as_micros(), 200 + 36_070 + 53_790 + 36_070);
}

#[test]
fn followers_apply_in_zxid_order_and_converge() {
    let f = fixture();
    let (ens, me) = (f.ens.clone(), f.clients[0]);
    let ens2 = f.ens.clone();
    f.sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/seq", b("0"), CreateMode::Persistent)
            .await
            .unwrap();
        for i in 1..=20 {
            s.set_data("/seq", Bytes::from(format!("{i}").into_bytes()))
                .await
                .unwrap();
        }
    });
    f.sim.run(); // drain commit stragglers
    for idx in 0..3 {
        let (data, version) = ens2.peek_tree(idx, |t| {
            let n = t.get("/seq").unwrap();
            (n.data.clone(), n.version)
        });
        assert_eq!(data, b("20"), "server {idx}");
        assert_eq!(version, 20, "server {idx}");
    }
}

#[test]
fn sequential_creates_from_different_sites_are_totally_ordered() {
    let f = fixture();
    let sim = f.sim.clone();
    let paths = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    sim.block_on({
        let ens = f.ens.clone();
        let me = f.clients[0];
        async move {
            let s = ens.connect(me);
            s.create("/q", Bytes::new(), CreateMode::Persistent)
                .await
                .unwrap();
        }
    });
    for i in 0..6 {
        let ens = f.ens.clone();
        let me = f.clients[i % 3];
        let paths = std::rc::Rc::clone(&paths);
        sim.spawn(async move {
            let s = ens.connect(me);
            let p = s
                .create("/q/n-", Bytes::new(), CreateMode::PersistentSequential)
                .await
                .unwrap();
            paths.borrow_mut().push(p);
        });
    }
    sim.run();
    let mut got = paths.borrow().clone();
    assert_eq!(got.len(), 6);
    got.sort_unstable();
    got.dedup();
    assert_eq!(got.len(), 6, "sequence suffixes are unique");
}

#[test]
fn duplicate_create_errors_cross_the_network() {
    let f = fixture();
    let (ens, me) = (f.ens.clone(), f.clients[1]);
    f.sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/once", b(""), CreateMode::Persistent)
            .await
            .unwrap();
        assert_eq!(
            s.create("/once", b(""), CreateMode::Persistent).await,
            Err(ZkError::NodeExists)
        );
        assert_eq!(s.delete("/missing").await, Err(ZkError::NoNode));
    });
}

#[test]
fn lock_recipe_grants_in_sequence_order() {
    let f = fixture();
    let sim = f.sim.clone();
    let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    for i in 0..3 {
        let ens = f.ens.clone();
        let me = f.clients[i];
        let order = std::rc::Rc::clone(&order);
        sim.spawn(async move {
            let s = ens.connect(me);
            let mut lock = ZkLock::new(&s, "/locks/job");
            // Ensure the parent exists for the nested path.
            match s
                .create("/locks", Bytes::new(), CreateMode::Persistent)
                .await
            {
                Ok(_) | Err(ZkError::NodeExists) => {}
                Err(e) => panic!("{e}"),
            }
            lock.acquire().await.unwrap();
            order.borrow_mut().push(i);
            // Hold briefly, then release.
            s.ens_sim().sleep(SimDuration::from_millis(5)).await;
            lock.release().await.unwrap();
        });
    }
    sim.run();
    assert_eq!(order.borrow().len(), 3, "everyone eventually acquired");
    // Mutual exclusion is implied by the grant order being a permutation;
    // stronger overlap checks live in the bench harness.
}

#[test]
fn leader_without_quorum_steps_down() {
    let f = fixture();
    let (ens, me, net) = (f.ens.clone(), f.clients[0], f.net.clone());
    let (f1, f2) = (f.servers[1], f.servers[2]);
    f.sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/ok", b("1"), CreateMode::Persistent)
            .await
            .unwrap();

        // Both followers die: the next write cannot reach a quorum, the
        // client sees ConnectionLoss, and the leader steps down rather
        // than letting its shadow tree drift ahead of the replicas.
        net.set_node_up(f1, false);
        net.set_node_up(f2, false);
        let res = s.create("/lost", b("x"), CreateMode::Persistent).await;
        assert_eq!(res, Err(ZkError::ConnectionLoss));
        assert!(ens.is_degraded());

        // Even after the followers recover, the stable-leader model stays
        // down for writes (a real deployment would elect a new leader).
        net.set_node_up(f1, true);
        net.set_node_up(f2, true);
        let res = s
            .create("/still-lost", b("x"), CreateMode::Persistent)
            .await;
        assert_eq!(res, Err(ZkError::ConnectionLoss));

        // Reads (local) keep working.
        assert_eq!(s.get_data("/ok").await, Some(b("1")));
    });
}

#[test]
fn session_close_cleans_ephemerals() {
    let f = fixture();
    let (ens, me) = (f.ens.clone(), f.clients[0]);
    let ens2 = f.ens.clone();
    f.sim.block_on(async move {
        let s = ens.connect(me);
        s.create("/l", b(""), CreateMode::Persistent).await.unwrap();
        s.create("/l/e-", b(""), CreateMode::EphemeralSequential)
            .await
            .unwrap();
        s.create("/l/keep", b(""), CreateMode::Persistent)
            .await
            .unwrap();
        s.close().await.unwrap();
        let s2 = ens.connect(me);
        assert_eq!(s2.get_children("/l").await, vec!["keep".to_string()]);
    });
    f.sim.run();
    // Converged everywhere.
    for idx in 0..3 {
        assert_eq!(
            ens2.peek_tree(idx, |t| t.children("/l")),
            vec!["keep".to_string()]
        );
    }
}
