//! Property test: the znode tree agrees with a simple model (a map of
//! paths) under arbitrary valid operation sequences, and sequential
//! suffixes never collide.

use bytes::Bytes;
use music_zab::znode::{CreateMode, ZnodeTree};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum OpKind {
    CreateTop(u8),
    CreateSeq(u8),
    SetData(u8, u8),
    Delete(u8),
}

fn arb_op() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (0u8..5).prop_map(OpKind::CreateTop),
        (0u8..5).prop_map(OpKind::CreateSeq),
        (0u8..5, 0u8..250).prop_map(|(p, v)| OpKind::SetData(p, v)),
        (0u8..5).prop_map(OpKind::Delete),
    ]
}

proptest! {
    #[test]
    fn tree_matches_model(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut tree = ZnodeTree::new();
        // Model: path -> (data, version).
        let mut model: BTreeMap<String, (Vec<u8>, u64)> = BTreeMap::new();
        let mut seq_paths: Vec<String> = Vec::new();

        for op in ops {
            match op {
                OpKind::CreateTop(p) => {
                    let path = format!("/top{p}");
                    let res = tree.create(&path, Bytes::from_static(b"init"), CreateMode::Persistent, None);
                    match model.entry(path) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(res.is_err(), "duplicate create must fail");
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            prop_assert_eq!(&res.unwrap(), e.key());
                            e.insert((b"init".to_vec(), 0));
                        }
                    }
                }
                OpKind::CreateSeq(p) => {
                    let parent = format!("/top{p}");
                    let res = tree.create(
                        &format!("{parent}/s-"),
                        Bytes::new(),
                        CreateMode::PersistentSequential,
                        None,
                    );
                    if model.contains_key(&parent) {
                        let actual = res.unwrap();
                        prop_assert!(!seq_paths.contains(&actual), "suffixes never collide");
                        seq_paths.push(actual.clone());
                        model.insert(actual, (Vec::new(), 0));
                    } else {
                        prop_assert!(res.is_err(), "missing parent must fail");
                    }
                }
                OpKind::SetData(p, v) => {
                    let path = format!("/top{p}");
                    let res = tree.set_data(&path, Bytes::from(vec![v]));
                    match model.get_mut(&path) {
                        Some((data, version)) => {
                            *data = vec![v];
                            *version += 1;
                            prop_assert_eq!(res.unwrap(), *version);
                        }
                        None => prop_assert!(res.is_err()),
                    }
                }
                OpKind::Delete(p) => {
                    let path = format!("/top{p}");
                    let has_children = model.keys().any(|k| k.starts_with(&format!("{path}/")));
                    let res = tree.delete(&path);
                    if !model.contains_key(&path) || has_children {
                        prop_assert!(res.is_err());
                    } else {
                        prop_assert!(res.is_ok());
                        model.remove(&path);
                    }
                }
            }
            // Full-state check every step: same nodes, same data/version.
            for (path, (data, version)) in &model {
                let node = tree.get(path);
                prop_assert!(node.is_some(), "model has {path} but tree lost it");
                let node = node.unwrap();
                prop_assert_eq!(node.data.as_ref(), data.as_slice(), "{}", path);
                prop_assert_eq!(node.version, *version, "{}", path);
            }
            prop_assert_eq!(tree.len(), model.len() + 1, "node counts (plus root) agree");
        }
    }
}
