//! The job-scheduler paradigm (§VII-a): a pool of pending jobs in MUSIC,
//! claimed and executed exclusively by whichever worker locks them first.
//!
//! * the client API inserts job records with lock-free `put`s and polls
//!   completion with lock-free `get`s — staleness is harmless;
//! * each worker scans the pool (`getAllKeys`), tries to lock an
//!   incomplete job, and runs `executeJobInCriticalSection`: read the
//!   *latest* state with `criticalGet`, advance it step by step, and
//!   checkpoint every step with `criticalPut` so a successor can resume
//!   exactly where a failed worker stopped;
//! * workers that lose the race evict their queued reference immediately
//!   (`removeLockReference`) for timely garbage collection.

use bytes::Bytes;

use music::{AcquireOutcome, CriticalError, MusicReplica};
use music_quorumstore::StoreError;
use music_simnet::time::SimDuration;

/// Record separator between execution state and description.
const SEP: char = '\u{2}';

/// The terminal execution state.
pub const DONE: &str = "DONE";

/// A job's stored record: dynamic execution state + static description
/// (§VII-a: "the value of the key is a combination of the dynamic job
/// execution state and a static job description").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobRecord {
    /// Current execution state (e.g. a Fig. 3(b) stage).
    pub state: String,
    /// Static description the worker needs to resolve the job.
    pub description: Bytes,
}

impl JobRecord {
    /// Creates a record in `state`.
    pub fn new(state: impl Into<String>, description: Bytes) -> Self {
        JobRecord {
            state: state.into(),
            description,
        }
    }

    /// Whether the job has completed.
    pub fn is_done(&self) -> bool {
        self.state == DONE
    }

    fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.state.len() + 1 + self.description.len());
        out.extend_from_slice(self.state.as_bytes());
        out.extend_from_slice(SEP.to_string().as_bytes());
        out.extend_from_slice(&self.description);
        Bytes::from(out)
    }

    fn decode(raw: &Bytes) -> Option<JobRecord> {
        let text_end = raw.iter().position(|&b| b == SEP as u8)?;
        let state = String::from_utf8(raw[..text_end].to_vec()).ok()?;
        Some(JobRecord {
            state,
            description: raw.slice(text_end + 1..),
        })
    }
}

/// The client-facing API of the scheduler (the "Client API" replicas of
/// Fig. 3(a)).
///
/// # Examples
///
/// See `examples/vnf_homing.rs` and this crate's integration tests for
/// end-to-end usage.
#[derive(Clone, Debug)]
pub struct JobBoard {
    replica: MusicReplica,
    prefix: String,
}

impl JobBoard {
    /// A board whose job keys are namespaced under `prefix`.
    pub fn new(replica: MusicReplica, prefix: impl Into<String>) -> Self {
        JobBoard {
            replica,
            prefix: prefix.into(),
        }
    }

    fn key(&self, job_id: &str) -> String {
        format!("{}/{}", self.prefix, job_id)
    }

    /// Submits a job in `initial_state` — a lock-free `put` (§VII-a).
    ///
    /// # Errors
    ///
    /// [`StoreError`] if no data-store replica acknowledges.
    pub async fn submit(
        &self,
        job_id: &str,
        initial_state: &str,
        description: Bytes,
    ) -> Result<(), StoreError> {
        let record = JobRecord::new(initial_state, description);
        self.replica.put(&self.key(job_id), record.encode()).await
    }

    /// Lock-free (possibly stale) view of a job.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the closest replica does not answer.
    pub async fn status(&self, job_id: &str) -> Result<Option<JobRecord>, StoreError> {
        let raw = self.replica.get(&self.key(job_id)).await?;
        Ok(raw.as_ref().and_then(JobRecord::decode))
    }

    /// All job ids on the board (possibly stale), submission-key order.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the closest replica does not answer.
    pub async fn list(&self) -> Result<Vec<String>, StoreError> {
        let keys = self.replica.get_all_keys().await?;
        let prefix = format!("{}/", self.prefix);
        Ok(keys
            .into_iter()
            .filter_map(|k| k.strip_prefix(&prefix).map(str::to_string))
            .collect())
    }

    /// Whether every listed job is done (a stale view can only
    /// under-report completion, never over-report it for a job it shows).
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the closest replica does not answer.
    pub async fn all_done(&self) -> Result<bool, StoreError> {
        for id in self.list().await? {
            match self.status(&id).await? {
                Some(r) if r.is_done() => {}
                _ => return Ok(false),
            }
        }
        Ok(true)
    }
}

/// What one scheduling pass accomplished.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkerOutcome {
    /// Ran `job_id` forward (to completion unless preempted).
    Worked {
        /// The job this worker processed.
        job_id: String,
        /// Whether the job reached [`DONE`].
        completed: bool,
        /// Checkpoints this worker wrote (0 = the job turned out to be
        /// already finished when claimed — a wasted claim on a stale view).
        steps: u32,
    },
    /// Every visible job was done or claimed by someone else.
    Idle,
}

/// One scheduler worker (a "worker pool" member of Fig. 3(a)).
#[derive(Clone, Debug)]
pub struct Worker {
    replica: MusicReplica,
    board: JobBoard,
    /// Simulated duration of one execution step (homing work is slow —
    /// minutes in production, §I).
    pub step_duration: SimDuration,
    /// How many acquire polls a claim is given before the worker gives up
    /// and evicts its reference. Zero patience (the literal §VII-a
    /// pseudo-code) can livelock when several workers chase the same job:
    /// each sees the others' transient references ahead of its own, gives
    /// up, and re-enqueues in lockstep. A small patience window lets the
    /// earliest reference win.
    pub claim_patience: u32,
}

impl Worker {
    /// A worker executing jobs from `board` through `replica`.
    pub fn new(replica: MusicReplica, board: JobBoard) -> Self {
        Worker {
            replica,
            board,
            step_duration: SimDuration::from_millis(200),
            claim_patience: 30,
        }
    }

    /// The board this worker draws jobs from.
    pub fn board(&self) -> &JobBoard {
        &self.board
    }

    /// One scheduling pass: scan, claim the first incomplete job, and run
    /// it forward with `advance` (state → next state, or `None` when the
    /// input state is terminal). Checkpoints every step.
    ///
    /// # Errors
    ///
    /// [`StoreError`] only for scan failures; per-job trouble (lost races,
    /// preemption) resolves to [`WorkerOutcome`] instead.
    pub async fn run_once(
        &self,
        advance: impl Fn(&str, &Bytes) -> Option<String>,
    ) -> Result<WorkerOutcome, StoreError> {
        let sim = self.replica.data().net().sim().clone();
        for job_id in self.board.list().await? {
            let key = self.board.key(&job_id);
            // Lock-free pre-check; stale values only cost a wasted claim.
            let Ok(Some(record)) = self.board.status(&job_id).await else {
                continue;
            };
            if record.is_done() {
                continue;
            }
            // Vie for the job.
            let Ok(lock_ref) = self.replica.create_lock_ref(&key).await else {
                continue;
            };
            let mut polls = 0;
            let granted = loop {
                match self.replica.acquire_lock(&key, lock_ref).await {
                    Ok(AcquireOutcome::Acquired) => break true,
                    Ok(AcquireOutcome::NoLongerHolder) => break false,
                    Ok(AcquireOutcome::NotYet) if polls < self.claim_patience => {
                        polls += 1;
                        sim.sleep(SimDuration::from_millis(10)).await;
                    }
                    Ok(AcquireOutcome::NotYet) => {
                        // Still not ours after the patience window: someone
                        // is executing the job. Evict our reference for
                        // timely GC (removeLockReference) and move on.
                        while self.replica.release_lock(&key, lock_ref).await.is_err() {
                            sim.sleep(SimDuration::from_millis(5)).await;
                        }
                        break false;
                    }
                    Err(_) => sim.sleep(SimDuration::from_millis(5)).await,
                }
            };
            if !granted {
                continue;
            }

            // executeJobInCriticalSection (§VII-a pseudo-code).
            let (completed, steps) = self.execute(&key, lock_ref, &advance).await;
            while self.replica.release_lock(&key, lock_ref).await.is_err() {
                sim.sleep(SimDuration::from_millis(5)).await;
            }
            return Ok(WorkerOutcome::Worked {
                job_id,
                completed,
                steps,
            });
        }
        Ok(WorkerOutcome::Idle)
    }

    async fn execute(
        &self,
        key: &str,
        lock_ref: music::LockRef,
        advance: &impl Fn(&str, &Bytes) -> Option<String>,
    ) -> (bool, u32) {
        let sim = self.replica.data().net().sim().clone();
        let mut steps = 0;
        // Resume from the *latest* state (the whole point of ECF).
        let Ok(Some(raw)) = self.replica.critical_get(key, lock_ref).await else {
            return (false, steps);
        };
        let Some(mut record) = JobRecord::decode(&raw) else {
            return (false, steps);
        };
        while let Some(next) = advance(&record.state, &record.description) {
            sim.sleep(self.step_duration).await; // the actual work
            record.state = next;
            match self
                .replica
                .critical_put(key, lock_ref, record.encode())
                .await
            {
                Ok(()) => steps += 1,
                Err(CriticalError::NotYetHolder) => {
                    sim.sleep(SimDuration::from_millis(5)).await;
                    continue; // transiently stale view; our state is intact
                }
                Err(_) => return (false, steps), // preempted or store trouble
            }
        }
        (record.is_done(), steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let r = JobRecord::new("SOLVING", Bytes::from_static(b"vnf-chain"));
        let decoded = JobRecord::decode(&r.encode()).unwrap();
        assert_eq!(decoded, r);
        assert!(!r.is_done());
        assert!(JobRecord::new(DONE, Bytes::new()).is_done());
    }

    #[test]
    fn record_with_binary_description() {
        let desc = Bytes::from(vec![0u8, 255, 2, 3, 2, 1]);
        let r = JobRecord::new("PENDING", desc.clone());
        let decoded = JobRecord::decode(&r.encode()).unwrap();
        assert_eq!(decoded.description, desc);
    }

    #[test]
    fn malformed_records_decode_to_none() {
        assert_eq!(
            JobRecord::decode(&Bytes::from_static(b"no-separator")),
            None
        );
    }
}
