//! # music-apps
//!
//! The two geo-distributed structuring paradigms MUSIC powers in
//! production (§VII), packaged as reusable libraries:
//!
//! * [`scheduler`] — the **job-scheduler** paradigm of the VNF Homing
//!   service (§VII-a): workers across sites vie for jobs through MUSIC
//!   locks, execute each job *exclusively* from its *latest* state, and
//!   survive worker failures without duplicating or losing work.
//! * [`ownership`] — the **single-owner active replication** paradigm of
//!   the Management Portal (§VII-b): each entity's updates are processed
//!   by exactly one owning back end under a long-lived critical section,
//!   amortizing the consensus cost of locking across many requests;
//!   ownership moves only when an owner fails.
//!
//! ## Quickstart
//!
//! ```
//! use music::MusicSystemBuilder;
//! use music_apps::OwnedStore;
//! use music_simnet::prelude::*;
//! use bytes::Bytes;
//!
//! let system = MusicSystemBuilder::new().profile(LatencyProfile::one_us()).build();
//! let sim = system.sim().clone();
//! let backend = OwnedStore::new("be-1", system.replica(0).clone());
//! sim.block_on(async move {
//!     backend.write("alice", Bytes::from_static(b"admin")).await.unwrap();
//!     assert_eq!(
//!         backend.read("alice").await.unwrap(),
//!         Some(Bytes::from_static(b"admin"))
//!     );
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ownership;
pub mod scheduler;

pub use ownership::{OwnedStore, OwnershipError};
pub use scheduler::{JobBoard, JobRecord, Worker, WorkerOutcome};
