//! The single-owner active replication paradigm (§VII-b): each entity is
//! processed by exactly one owning back end under a long-lived critical
//! section, with forced takeover on owner failure.
//!
//! Ownership details (`owner name`, `lockRef`) live in MUSIC itself under
//! a lock-free key, cached at each back end; stale ownership information
//! only costs an unnecessary ownership transition, never correctness.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;

use music::{AcquireOutcome, CriticalError, LockRef, MusicReplica};
use music_simnet::time::SimDuration;

/// Errors surfaced by the owned store.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OwnershipError {
    /// The back-end could not reach its stores; the front end should retry
    /// at the next-closest back end.
    Unavailable,
    /// This back end lost ownership mid-operation (a rival took over).
    LostOwnership,
}

impl std::fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OwnershipError::Unavailable => write!(f, "back end could not reach the stores"),
            OwnershipError::LostOwnership => write!(f, "ownership was taken over"),
        }
    }
}

impl std::error::Error for OwnershipError {}

/// A back-end replica processing requests for the entities it owns.
///
/// Writes by the steady-state owner cost **one quorum put** — no consensus
/// on the critical path; `createLockRef`/`acquireLock` run only at
/// ownership transitions (initialization or predecessor failure).
#[derive(Clone, Debug)]
pub struct OwnedStore {
    name: String,
    replica: MusicReplica,
    owned: Rc<RefCell<HashMap<String, LockRef>>>,
}

impl OwnedStore {
    /// A back end identified as `name` (stable across the deployment).
    pub fn new(name: impl Into<String>, replica: MusicReplica) -> Self {
        OwnedStore {
            name: name.into(),
            replica,
            owned: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    /// This back end's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Entities currently owned (locally cached view).
    pub fn owned_count(&self) -> usize {
        self.owned.borrow().len()
    }

    fn owner_key(entity: &str) -> String {
        format!("{entity}-owner")
    }

    fn encode_owner(&self, lock_ref: LockRef) -> Bytes {
        Bytes::from(format!("{}|{}", self.name, lock_ref.value()).into_bytes())
    }

    fn decode_owner(raw: &Bytes) -> Option<(String, LockRef)> {
        let s = String::from_utf8(raw.to_vec()).ok()?;
        let (owner, r) = s.split_once('|')?;
        Some((owner.to_string(), LockRef::new(r.parse().ok()?)))
    }

    /// `own(entity)`: acquire the entity's lock and publish ownership
    /// (§VII-b pseudo-code; "called infrequently").
    async fn own(&self, entity: &str) -> Result<LockRef, OwnershipError> {
        let sim = self.replica.data().net().sim().clone();
        let lock_ref = self
            .replica
            .create_lock_ref(entity)
            .await
            .map_err(|_| OwnershipError::Unavailable)?;
        loop {
            match self.replica.acquire_lock(entity, lock_ref).await {
                Ok(AcquireOutcome::Acquired) => break,
                Ok(AcquireOutcome::NoLongerHolder) => return Err(OwnershipError::LostOwnership),
                _ => sim.sleep(SimDuration::from_millis(2)).await,
            }
        }
        self.replica
            .put(&Self::owner_key(entity), self.encode_owner(lock_ref))
            .await
            .map_err(|_| OwnershipError::Unavailable)?;
        self.owned.borrow_mut().insert(entity.to_string(), lock_ref);
        Ok(lock_ref)
    }

    /// Ensures this back end owns `entity`, forcibly taking over from a
    /// presumed-failed predecessor when the front end routes here.
    async fn ensure_owner(&self, entity: &str) -> Result<LockRef, OwnershipError> {
        if let Some(r) = self.owned.borrow().get(entity) {
            return Ok(*r);
        }
        let details = self
            .replica
            .get(&Self::owner_key(entity))
            .await
            .map_err(|_| OwnershipError::Unavailable)?;
        match details.as_ref().and_then(Self::decode_owner) {
            None => self.own(entity).await, // first owner
            Some((owner, prev_ref)) if owner == self.name => {
                // We owned it before (cache lost, e.g. restart): reuse.
                self.owned.borrow_mut().insert(entity.to_string(), prev_ref);
                Ok(prev_ref)
            }
            Some((_, prev_ref)) => {
                // Predecessor presumed failed: preempt and take over.
                self.replica
                    .forced_release(entity, prev_ref)
                    .await
                    .map_err(|_| OwnershipError::Unavailable)?;
                self.own(entity).await
            }
        }
    }

    /// Processes one update for `entity`: the §VII-b back-end `write`.
    ///
    /// # Errors
    ///
    /// [`OwnershipError::LostOwnership`] if a rival back end took over
    /// (the stale cache entry is dropped so a retry re-establishes
    /// ownership), or [`OwnershipError::Unavailable`] on store trouble.
    pub async fn write(&self, entity: &str, value: Bytes) -> Result<(), OwnershipError> {
        let sim = self.replica.data().net().sim().clone();
        let lock_ref = self.ensure_owner(entity).await?;
        for _ in 0..8 {
            match self
                .replica
                .critical_put(entity, lock_ref, value.clone())
                .await
            {
                Ok(()) => return Ok(()),
                Err(CriticalError::NotYetHolder) => {
                    sim.sleep(SimDuration::from_millis(2)).await;
                }
                Err(CriticalError::NoLongerHolder) | Err(CriticalError::Expired) => {
                    self.owned.borrow_mut().remove(entity);
                    return Err(OwnershipError::LostOwnership);
                }
                Err(CriticalError::Store(_)) => return Err(OwnershipError::Unavailable),
            }
        }
        Err(OwnershipError::Unavailable)
    }

    /// Reads `entity`'s latest value under this back end's ownership.
    ///
    /// # Errors
    ///
    /// Same as [`OwnedStore::write`].
    pub async fn read(&self, entity: &str) -> Result<Option<Bytes>, OwnershipError> {
        let lock_ref = self.ensure_owner(entity).await?;
        match self.replica.critical_get(entity, lock_ref).await {
            Ok(v) => Ok(v),
            Err(CriticalError::NoLongerHolder) | Err(CriticalError::Expired) => {
                self.owned.borrow_mut().remove(entity);
                Err(OwnershipError::LostOwnership)
            }
            Err(_) => Err(OwnershipError::Unavailable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_encoding_round_trips() {
        let raw = Bytes::from_static(b"be-ohio|42");
        assert_eq!(
            OwnedStore::decode_owner(&raw),
            Some(("be-ohio".to_string(), LockRef::new(42)))
        );
        assert_eq!(
            OwnedStore::decode_owner(&Bytes::from_static(b"garbage")),
            None
        );
        assert_eq!(
            OwnedStore::decode_owner(&Bytes::from_static(b"x|not-a-number")),
            None
        );
    }
}
