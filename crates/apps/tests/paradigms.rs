//! End-to-end behaviour of the §VII paradigms: exclusive job execution
//! with crash takeover, and single-owner replication with fail-over.

use bytes::Bytes;
use music::{MusicConfig, MusicSystemBuilder, Watchdog};
use music_apps::{JobBoard, OwnedStore, OwnershipError, Worker, WorkerOutcome};
use music_simnet::prelude::*;

fn quiet() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

fn system() -> music::MusicSystem {
    MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .music_config(MusicConfig {
            failure_timeout: SimDuration::from_secs(3),
            ..MusicConfig::default()
        })
        .seed(55)
        .build()
}

const STAGES: [&str; 4] = ["PENDING", "TRANSLATED", "SOLVING", "DONE"];

fn advance(state: &str, _desc: &Bytes) -> Option<String> {
    let i = STAGES.iter().position(|s| *s == state)?;
    STAGES.get(i + 1).map(|s| s.to_string())
}

#[test]
fn workers_share_the_pool_without_duplication() {
    let sys = system();
    let sim = sys.sim().clone();
    let board = JobBoard::new(sys.replica(0).clone(), "jobs");

    // Submit 4 jobs.
    sim.block_on({
        let board = board.clone();
        async move {
            for j in 0..4 {
                board
                    .submit(&format!("j{j}"), "PENDING", Bytes::from_static(b"chain"))
                    .await
                    .unwrap();
            }
        }
    });
    sim.run();

    // Three workers drain the pool; count executed steps per worker.
    // Wasted claims (a stale view showing an already-done job) report
    // steps = 0 and must not count as work.
    let steps_done = std::rc::Rc::new(std::cell::RefCell::new(vec![0u32; 3]));
    let completions = std::rc::Rc::new(std::cell::Cell::new(0u32));
    let mut handles = Vec::new();
    for w in 0..3 {
        let worker = Worker::new(
            sys.replica(w).clone(),
            JobBoard::new(sys.replica(w).clone(), "jobs"),
        );
        let steps_done = std::rc::Rc::clone(&steps_done);
        let completions = std::rc::Rc::clone(&completions);
        let sim2 = sim.clone();
        handles.push(sim.spawn(async move {
            loop {
                match worker.run_once(advance).await.unwrap() {
                    WorkerOutcome::Worked {
                        completed, steps, ..
                    } => {
                        steps_done.borrow_mut()[w] += steps;
                        if completed && steps > 0 {
                            completions.set(completions.get() + 1);
                        }
                    }
                    WorkerOutcome::Idle => {
                        if worker_board_done(&worker).await {
                            break;
                        }
                        sim2.sleep(SimDuration::from_millis(100)).await;
                    }
                }
            }
        }));
    }
    for h in handles {
        sim.run_until_complete(h);
    }
    // 4 jobs × 3 stage transitions: every checkpoint executed exactly once
    // across the pool (no duplicated work), and at most 4 completions
    // counted (a completion can be split across workers after preemption,
    // but here no failures occur).
    let total_steps: u32 = steps_done.borrow().iter().sum();
    assert_eq!(
        total_steps,
        12,
        "steps per worker: {:?}",
        steps_done.borrow()
    );
    assert_eq!(completions.get(), 4, "each job driven to DONE exactly once");
    let done = sim.block_on({
        let board = board.clone();
        async move { board.all_done().await.unwrap() }
    });
    assert!(done);
}

async fn worker_board_done(worker: &Worker) -> bool {
    worker.board().all_done().await.unwrap_or(false)
}

#[test]
fn crashed_worker_job_is_resumed_not_restarted() {
    let sys = system();
    let sim = sys.sim().clone();
    let board = JobBoard::new(sys.replica(0).clone(), "work");
    sim.block_on({
        let board = board.clone();
        async move {
            board
                .submit("fragile", "PENDING", Bytes::new())
                .await
                .unwrap();
        }
    });
    sim.run();

    // Watchdog collects the crashed worker's lock.
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(500));
    dog.watch("work/fragile");
    dog.spawn();

    // Worker A advances the job two stages, then "crashes" (we abandon it
    // mid-critical-section by advancing only until SOLVING and never
    // releasing — simulated by a step function that panics... instead:
    // run it inside a task we stop driving).
    let a = sys.replica(0).clone();
    sim.spawn({
        let sim2 = sim.clone();
        async move {
            let key = "work/fragile".to_string();
            let lr = a.create_lock_ref(&key).await.unwrap();
            while a.acquire_lock(&key, lr).await.unwrap() != music::AcquireOutcome::Acquired {}
            // Advance PENDING -> TRANSLATED with a checkpoint, then die.
            let mut raw = b"TRANSLATED".to_vec();
            raw.push(2); // the record separator
            a.critical_put(&key, lr, Bytes::from(raw)).await.unwrap();
            // Crash: never release; the task just parks forever.
            sim2.sleep(SimDuration::from_secs(3600)).await;
        }
    });
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));

    // Worker B takes over after the watchdog clears the lock, resuming
    // from TRANSLATED (not from PENDING).
    let b_worker = Worker::new(
        sys.replica(2).clone(),
        JobBoard::new(sys.replica(2).clone(), "work"),
    );
    let seen_states = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let seen2 = std::rc::Rc::clone(&seen_states);
    let h = sim.spawn({
        let sim2 = sim.clone();
        async move {
            loop {
                let outcome = b_worker
                    .run_once(|state, d| {
                        seen2.borrow_mut().push(state.to_string());
                        advance(state, d)
                    })
                    .await
                    .unwrap();
                if matches!(
                    outcome,
                    WorkerOutcome::Worked {
                        completed: true,
                        ..
                    }
                ) {
                    break;
                }
                sim2.sleep(SimDuration::from_millis(200)).await;
            }
        }
    });
    sim.run_until_complete(h);
    dog.stop();
    assert!(
        !seen_states.borrow().iter().any(|s| s == "PENDING"),
        "resumed job must not restart from PENDING: {:?}",
        seen_states.borrow()
    );
    let status = sim.block_on(async move { board.status("fragile").await.unwrap().unwrap() });
    assert!(status.is_done());
}

#[test]
fn ownership_amortizes_and_fails_over() {
    let sys = system();
    let sim = sys.sim().clone();
    let be1 = OwnedStore::new("be-1", sys.replica(0).clone());
    let be2 = OwnedStore::new("be-2", sys.replica(1).clone());

    let sim2 = sim.clone();
    sim.block_on(async move {
        // be-1 becomes alice's owner on first write.
        be1.write("alice", Bytes::from_static(b"viewer"))
            .await
            .unwrap();
        assert_eq!(be1.owned_count(), 1);

        // Steady-state owner writes avoid consensus: they're quorum-put
        // fast (~54ms on 1Us, not ~500ms).
        let t0 = sim2.now();
        be1.write("alice", Bytes::from_static(b"editor"))
            .await
            .unwrap();
        let steady = sim2.now() - t0;
        assert!(steady.as_millis() < 120, "steady write took {steady}");

        // be-1 fails; the front end routes to be-2, which takes over.
        be2.write("alice", Bytes::from_static(b"admin"))
            .await
            .unwrap();
        assert_eq!(
            be2.read("alice").await.unwrap(),
            Some(Bytes::from_static(b"admin"))
        );

        // be-1 comes back, still believing it owns alice: it must be told.
        let res = be1.write("alice", Bytes::from_static(b"stale")).await;
        assert_eq!(res.unwrap_err(), OwnershipError::LostOwnership);
        // After the error, a retry re-establishes ownership by takeover.
        be1.write("alice", Bytes::from_static(b"back"))
            .await
            .unwrap();
        assert_eq!(
            be1.read("alice").await.unwrap(),
            Some(Bytes::from_static(b"back"))
        );
    });
}
