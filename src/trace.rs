//! The `music-sim trace` scenario: a short, seeded chaos run that
//! exercises every instrumented code path — clean critical sections, a
//! lockholder crash mid-`criticalPut` (the §IV-B case), watchdog
//! preemption, a site partition with client fail-over, an anti-entropy
//! sweep, and the full lease lifecycle (grant, warm re-entry, a
//! competitor's break, and a watchdog revocation of an abandoned lease)
//! — while a [`Recorder`] captures the causal event log and per-node
//! counters.
//!
//! The scenario is *deterministic*: a given `(seed, profile)` pair always
//! produces the identical virtual-time schedule, and — because recording
//! is pure bookkeeping — the schedule is byte-for-byte the same whether
//! the recorder is off, counting, or tracing.

use bytes::Bytes;
use music::{
    AcquireOutcome, CriticalSection, MusicConfig, MusicSystemBuilder, RepairDaemon, Watchdog,
    WriteMode,
};
use music_simnet::prelude::*;
use music_telemetry::span::check as check_spans;
use music_telemetry::{
    check, EcfReport, Event, MetricsSnapshot, OnlineConfig, OnlineReport, Recorder, Span,
    SpanReport, TraceId,
};

/// `criticalGet` with retries: under the run's 1% loss a quorum read can
/// transiently exhaust its retransmits on an unlucky seed; a scripted
/// scenario retries exactly like a real client and only then gives up.
async fn get_retrying(sim: &Sim, cs: &CriticalSection, what: &str) -> Option<Bytes> {
    for _ in 0..10 {
        if let Ok(v) = cs.get().await {
            return v;
        }
        sim.sleep(SimDuration::from_millis(50)).await;
    }
    cs.get().await.unwrap_or_else(|e| panic!("{what}: {e:?}"))
}

/// `criticalPut` with retries (see [`get_retrying`]); MUSIC puts are
/// idempotent per stamp, so retrying an acknowledged-but-lost put is safe.
async fn put_retrying(sim: &Sim, cs: &CriticalSection, value: Bytes, what: &str) {
    for _ in 0..10 {
        if cs.put(value.clone()).await.is_ok() {
            return;
        }
        sim.sleep(SimDuration::from_millis(50)).await;
    }
    cs.put(value)
        .await
        .unwrap_or_else(|e| panic!("{what}: {e:?}"));
}

/// Everything a chaos run produces: the op-outcome log (for determinism
/// comparisons), the recorded telemetry, and the ECF verdict.
#[derive(Debug)]
pub struct TraceRun {
    /// Human-readable outcome of every scripted operation, in order.
    pub outcomes: Vec<String>,
    /// Final virtual time, in microseconds.
    pub final_time_us: u64,
    /// The recorded event log (empty unless the recorder was tracing).
    pub events: Vec<Event>,
    /// Counter snapshot (empty if the recorder was off).
    pub metrics: MetricsSnapshot,
    /// ECF checker verdict over `events`.
    pub report: EcfReport,
    /// The streaming checker's verdict, computed *during* the run
    /// (`None` unless the recorder was tracing). Its ECF core must equal
    /// [`TraceRun::report`]; its queue layer must be clean.
    pub online: Option<OnlineReport>,
    /// The recorded span log (empty unless the recorder was tracing).
    pub spans: Vec<Span>,
    /// Span-tree well-formedness verdict over `spans`.
    pub span_report: SpanReport,
    /// Site of each node, indexed by node id (for `--site` filtering).
    pub node_sites: Vec<u32>,
}

/// Events surviving the `music-sim trace` output filters. `node_sites`
/// maps node id → site (see [`TraceRun::node_sites`]); `None` filters
/// pass everything. Filtering applies to the *printed* lines only — the
/// ECF checker always sees the full log.
pub fn filter_events(
    events: &[Event],
    node_sites: &[u32],
    node: Option<u32>,
    site: Option<u32>,
    trace: Option<TraceId>,
) -> Vec<Event> {
    events
        .iter()
        .filter(|e| node.is_none_or(|n| e.node == n))
        .filter(|e| site.is_none_or(|s| node_sites.get(e.node as usize).copied() == Some(s)))
        .filter(|e| trace.is_none_or(|t| e.trace == t))
        .cloned()
        .collect()
}

/// Spans surviving the same filters (spans carry their site directly).
pub fn filter_spans(
    spans: &[Span],
    node: Option<u32>,
    site: Option<u32>,
    trace: Option<TraceId>,
) -> Vec<Span> {
    spans
        .iter()
        .filter(|s| node.is_none_or(|n| s.node == n))
        .filter(|s| site.is_none_or(|x| s.site == x))
        .filter(|s| trace.is_none_or(|t| s.trace == t))
        .cloned()
        .collect()
}

/// Runs the seeded chaos scenario with `recorder` installed and returns
/// the recorded telemetry plus the replayed ECF verdict.
pub fn run_chaos(profile: LatencyProfile, seed: u64, recorder: Recorder) -> TraceRun {
    // Check the run as it executes: attach the streaming checker unless
    // the caller already configured one (e.g. a sampling window).
    if recorder.is_tracing() && recorder.online_report().is_none() {
        recorder.attach_online(OnlineConfig::unbounded());
    }
    let net_cfg = NetConfig {
        loss: 0.01,
        jitter_frac: 0.05,
        ..NetConfig::default()
    };
    let music_cfg = MusicConfig {
        failure_timeout: SimDuration::from_secs(10),
        ..MusicConfig::default()
    };
    let sys = MusicSystemBuilder::new()
        .profile(profile)
        .net_config(net_cfg)
        .music_config(music_cfg)
        .seed(seed)
        .telemetry(recorder.clone())
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    let outcomes = sim.block_on(async move {
        let mut log: Vec<String> = Vec::new();
        let b = |s: &str| Bytes::from(s.as_bytes().to_vec());

        // Phase 1 — a clean critical section from site 0.
        let client = sys2.client_at_site(0);
        let cs = client.enter("alpha").await.expect("enter alpha");
        log.push(format!("alpha: entered with {}", cs.lock_ref()));
        log.push(format!(
            "alpha: get -> {:?}",
            get_retrying(sys2.sim(), &cs, "alpha get").await
        ));
        put_retrying(sys2.sim(), &cs, b("alpha-v1"), "alpha put").await;
        log.push("alpha: put acknowledged".into());
        let v = get_retrying(sys2.sim(), &cs, "alpha get").await;
        log.push(format!("alpha: get -> {:?}", v.map(|v| v.len())));
        cs.release().await.expect("release");
        log.push("alpha: released".into());

        // Phase 2 — lockholder crash mid-criticalPut (§IV-B). Seed an
        // acknowledged value, re-acquire, partition the holder's site so
        // its next put cannot reach a quorum, and abandon it (crash).
        let dog = Watchdog::new(sys2.replica(1).clone(), SimDuration::from_millis(500));
        dog.watch("beta");
        dog.spawn();
        let holder = sys2.replica(0).clone();
        let r0 = holder.create_lock_ref("beta").await.expect("lockref");
        while holder.acquire_lock("beta", r0).await.expect("acquire") != AcquireOutcome::Acquired {
            sys2.sim().sleep(SimDuration::from_millis(10)).await;
        }
        holder
            .critical_put("beta", r0, b("beta-stable"))
            .await
            .expect("put");
        log.push("beta: stable value acknowledged".into());
        sys2.net().partition_site(SiteId(0), true);
        let res = holder.critical_put("beta", r0, b("beta-halfway")).await;
        log.push(format!(
            "beta: mid-put under partition -> ok={}",
            res.is_ok()
        ));
        // The holder crashes here: nobody releases r0. Heal the site so
        // the in-flight write may still trickle in (the interesting case).
        sys2.net().partition_site(SiteId(0), false);

        // The watchdog preempts the dead holder; a new client takes over.
        let takeover = sys2.replica(2).clone();
        let r1 = takeover.create_lock_ref("beta").await.expect("lockref");
        let deadline = sys2.sim().now() + SimDuration::from_secs(30);
        loop {
            // Transient `Err` polls are expected under 1% loss: retry
            // within the deadline like any real waiter would.
            match takeover.acquire_lock("beta", r1).await {
                Ok(AcquireOutcome::Acquired) => break,
                Ok(_) | Err(_) => {
                    assert!(sys2.sim().now() < deadline, "watchdog never cleared beta");
                    sys2.sim().sleep(SimDuration::from_millis(100)).await;
                }
            }
        }
        let mut read = None;
        for attempt in 0.. {
            match takeover.critical_get("beta", r1).await {
                Ok(v) => {
                    read = v;
                    break;
                }
                Err(e) => {
                    assert!(attempt < 10, "beta takeover get: {e:?}");
                    sys2.sim().sleep(SimDuration::from_millis(50)).await;
                }
            }
        }
        log.push(format!(
            "beta: takeover read -> {:?}",
            read.map(|v| String::from_utf8_lossy(&v).into_owned())
        ));
        for attempt in 0.. {
            match takeover.critical_put("beta", r1, b("beta-recovered")).await {
                Ok(()) => break,
                Err(e) => {
                    assert!(attempt < 10, "beta takeover put: {e:?}");
                    sys2.sim().sleep(SimDuration::from_millis(50)).await;
                }
            }
        }
        for attempt in 0.. {
            // Idempotent: a nacked release retries harmlessly.
            match takeover.release_lock("beta", r1).await {
                Ok(()) => break,
                Err(e) => {
                    assert!(attempt < 10, "beta release: {e:?}");
                    sys2.sim().sleep(SimDuration::from_millis(50)).await;
                }
            }
        }
        log.push(format!(
            "beta: recovered ({} preemptions)",
            dog.preemptions()
        ));
        dog.stop();

        // Phase 3 — a remote-site flap while a critical section runs, then
        // an anti-entropy sweep to heal whatever the flap left behind.
        sys2.net().partition_site(SiteId(2), true);
        let cs = client.enter("gamma").await.expect("enter gamma");
        put_retrying(sys2.sim(), &cs, b("gamma-v1"), "gamma put").await;
        cs.release().await.expect("release");
        log.push("gamma: critical section under site-2 partition".into());
        sys2.net().partition_site(SiteId(2), false);
        let fixer = RepairDaemon::new(sys2.replica(1).clone(), SimDuration::from_secs(60));
        fixer.sweep_once().await;
        log.push(format!("repair: {} keys healed", fixer.repaired()));

        // Phase 4 — lock-free traffic for the eventual paths. Retried like
        // every other quorum op here: under the run's 1% loss an unlucky
        // seed can transiently exhaust a single op's retransmits.
        let r = sys2.replica(1).clone();
        for attempt in 0.. {
            match r.put("notes", b("eventual")).await {
                Ok(()) => break,
                Err(e) => {
                    assert!(attempt < 10, "notes put: {e:?}");
                    sys2.sim().sleep(SimDuration::from_millis(50)).await;
                }
            }
        }
        let mut notes = None;
        for attempt in 0.. {
            match r.get("notes").await {
                Ok(v) => {
                    notes = v;
                    break;
                }
                Err(e) => {
                    assert!(attempt < 10, "notes get: {e:?}");
                    sys2.sim().sleep(SimDuration::from_millis(50)).await;
                }
            }
        }
        log.push(format!("notes: get -> {:?}", notes.map(|v| v.len())));

        // Phase 5 — a clean *pipelined* critical section: puts are issued
        // with a bounded in-flight window; the criticalGet and the release
        // act as flush barriers.
        let piped = sys2
            .client_at_site(1)
            .with_write_mode(WriteMode::Pipelined { window: 4 });
        let cs = piped.enter("delta").await.expect("enter delta");
        let mut peak = 0usize;
        for i in 0..8 {
            cs.put_async(Bytes::from(format!("delta-v{i}").into_bytes()))
                .await
                .expect("put_async");
            peak = peak.max(cs.in_flight());
        }
        log.push(format!("delta: 8 pipelined puts, peak in-flight {peak}"));
        cs.flush().await.expect("flush");
        log.push(format!("delta: flushed, in-flight {}", cs.in_flight()));
        let v = get_retrying(sys2.sim(), &cs, "delta get").await;
        log.push(format!(
            "delta: get -> {:?}",
            v.map(|v| String::from_utf8_lossy(&v).into_owned())
        ));
        cs.release().await.expect("release");

        // Phase 6 — a pipelined lockholder crashing with writes still in
        // flight: the unacknowledged quorum writes keep propagating like a
        // crashed holder's (§IV-B), the watchdog preempts with a
        // resynchronizing forcedRelease, and the takeover reads cleanly.
        let dog = Watchdog::new(sys2.replica(0).clone(), SimDuration::from_millis(500));
        dog.watch("delta");
        dog.spawn();
        let piped2 = sys2
            .client_at_site(2)
            .with_write_mode(WriteMode::Pipelined { window: 4 });
        let cs = piped2.enter("delta").await.expect("re-enter delta");
        // Cut site 2 off *after* entering: issuing only needs the local
        // lock-store peek, so the puts launch but their quorum writes hang.
        sys2.net().partition_site(SiteId(2), true);
        // Issuing may already surface an `Err` from a timed-out in-flight
        // write on some seeds; either way the holder dies with whatever
        // made it out, which is the case under test.
        let _ = cs.put_async(b("delta-inflight-1")).await;
        let _ = cs.put_async(b("delta-inflight-2")).await;
        log.push(format!(
            "delta: crashed with {} writes in flight",
            cs.in_flight()
        ));
        drop(cs); // the holder dies; nobody flushes or releases
        sys2.net().partition_site(SiteId(2), false);
        let takeover = sys2.client_at_site(0);
        let cs = takeover.enter("delta").await.expect("takeover enter");
        let v = get_retrying(sys2.sim(), &cs, "delta takeover get").await;
        log.push(format!(
            "delta: takeover read {:?} ({} preemptions)",
            v.map(|v| String::from_utf8_lossy(&v).into_owned()),
            dog.preemptions()
        ));
        cs.release().await.expect("takeover release");
        dog.stop();

        // Phase 7 — the lease lifecycle: a clean release retains a lease,
        // the next section re-enters warm, a competitor breaks the
        // standing lease, the broken owner's cached grant fails
        // revalidation and falls back to the slow path, and finally the
        // owner vanishes holding a fresh lease — which the watchdog
        // revokes exactly like a preempted dead holder.
        let dog = Watchdog::new(sys2.replica(1).clone(), SimDuration::from_millis(500));
        dog.watch("epsilon");
        dog.spawn();
        let leaser = sys2
            .client_at_site(1)
            .with_lease_window(SimDuration::from_secs(5));
        let cs = leaser.enter("epsilon").await.expect("enter epsilon");
        put_retrying(sys2.sim(), &cs, b("epsilon-v1"), "epsilon put").await;
        cs.release().await.expect("release");
        let cs = leaser.enter("epsilon").await.expect("lease re-enter");
        log.push(format!(
            "epsilon: warm re-entry with {} under the lease",
            cs.lock_ref()
        ));
        put_retrying(sys2.sim(), &cs, b("epsilon-v2"), "epsilon put").await;
        cs.release().await.expect("release");
        let breaker = sys2.client_at_site(0);
        let cs = breaker.enter("epsilon").await.expect("break enter");
        put_retrying(sys2.sim(), &cs, b("epsilon-v3"), "epsilon put").await;
        cs.release().await.expect("release");
        log.push("epsilon: competitor broke the lease and ran its section".into());
        let cs = leaser.enter("epsilon").await.expect("post-break enter");
        let v = get_retrying(sys2.sim(), &cs, "epsilon get").await;
        log.push(format!(
            "epsilon: broken owner re-entered slow, read {:?}",
            v.map(|v| String::from_utf8_lossy(&v).into_owned())
        ));
        put_retrying(sys2.sim(), &cs, b("epsilon-v4"), "epsilon put").await;
        cs.release().await.expect("release");
        drop(leaser); // vanishes without relinquishing its fresh lease
        let deadline = sys2.sim().now() + SimDuration::from_secs(30);
        while dog.lease_revocations() == 0 {
            assert!(
                sys2.sim().now() < deadline,
                "watchdog never revoked epsilon"
            );
            sys2.sim().sleep(SimDuration::from_millis(200)).await;
        }
        let cs = breaker.enter("epsilon").await.expect("post-revoke enter");
        let v = get_retrying(sys2.sim(), &cs, "epsilon takeover get").await;
        log.push(format!(
            "epsilon: lease revoked ({}), takeover read {:?}",
            dog.lease_revocations(),
            v.map(|v| String::from_utf8_lossy(&v).into_owned())
        ));
        cs.release().await.expect("release");
        dog.stop();
        log
    });

    let final_time_us = sys.sim().now().as_micros();
    let events = recorder.events();
    let metrics = recorder.metrics();
    let report = check(&events);
    let online = recorder.online_report();
    let spans = recorder.spans();
    let span_report = check_spans(&spans);
    let node_sites = (0..sys.net().node_count() as u32)
        .map(|n| sys.net().site_of(NodeId(n)).0)
        .collect();
    TraceRun {
        outcomes,
        final_time_us,
        events,
        metrics,
        report,
        online,
        spans,
        span_report,
        node_sites,
    }
}
