//! `music-sim` — command-line driver for the MUSIC reproduction.
//!
//! ```text
//! music-sim demo                  # a narrated critical section on 1Us
//! music-sim latency [profile]     # Fig. 5(b)-style operation breakdown
//! music-sim throughput [profile]  # quick Fig. 4(a)-style comparison
//! music-sim trace [p] [--seed N]  # seeded chaos run as a JSON-lines trace
//! music-sim nemesis [p|all] [--seed N] [--schedules K] [--mode M]
//!                                 # randomized fault schedules + ECF verdicts
//! music-sim verify                # bounded model check of the ECF invariants
//! music-sim profiles              # print the Table II latency profiles
//! ```
//!
//! Everything runs in simulated (virtual) time and is deterministic.

use bytes::Bytes;
use music::{MusicSystemBuilder, OpKind};
use music_bench::music_runners::{
    cassa_ev_throughput, music_cs_latency, music_write_throughput, ThroughputRun,
};
use music_bench::setup::Mode;
use music_simnet::prelude::*;

fn profile_by_name(name: Option<&str>) -> LatencyProfile {
    match name.unwrap_or("1Us") {
        "1l" => LatencyProfile::one_l(),
        "1UsEu" => LatencyProfile::one_us_eu(),
        _ => LatencyProfile::one_us(),
    }
}

fn cmd_profiles() {
    println!("Table II latency profiles (RTT in ms):");
    for p in LatencyProfile::table_ii() {
        print!("  {:<6}", p.name());
        for a in 0..p.site_count() {
            for b in (a + 1)..p.site_count() {
                print!(
                    " {}-{}: {:>7.2}",
                    p.site_name(a),
                    p.site_name(b),
                    p.rtt(a, b).as_millis_f64()
                );
            }
        }
        println!();
    }
}

fn cmd_demo(profile: LatencyProfile) {
    println!(
        "== MUSIC critical section on the {} profile ==",
        profile.name()
    );
    let system = MusicSystemBuilder::new()
        .profile(profile)
        .seed(1)
        .telemetry(music_repro::telemetry::Recorder::metrics_only())
        .build();
    let sim = system.sim().clone();
    let client = system.client_at_site(0);
    let stats = system.stats().clone();
    sim.block_on(async move {
        let cs = client.enter("demo-key").await.expect("enter");
        println!("  entered critical section with {}", cs.lock_ref());
        let before = cs.get().await.expect("get");
        println!("  criticalGet  -> {before:?} (guaranteed latest)");
        cs.put(Bytes::from_static(b"hello-from-the-cli"))
            .await
            .expect("put");
        println!("  criticalPut  -> acknowledged at a quorum");
        let after = cs.get().await.expect("get");
        println!(
            "  criticalGet  -> {:?}",
            after.map(|v| String::from_utf8_lossy(&v).into_owned())
        );
        cs.release().await.expect("release");
        println!("  released");
    });
    println!("\nper-operation mean latency:");
    for kind in OpKind::ALL {
        let h = stats.histogram(kind);
        if !h.is_empty() {
            println!("  {kind:<20} {:>9.2} ms", h.mean().as_millis_f64());
        }
    }
    println!("\nprotocol counters:");
    music_bench::report::print_metrics(&system.recorder().metrics());
    println!("(virtual time elapsed: {})", system.sim().now());
}

fn cmd_latency(profile: LatencyProfile) {
    println!(
        "== operation latency breakdown on {} (5 critical sections) ==",
        profile.name()
    );
    let music = music_cs_latency(profile.clone(), Mode::Music, 1, 10, 5, 2);
    let mscp = music_cs_latency(profile, Mode::Mscp, 1, 10, 5, 2);
    let rows = [
        ("createLockRef", music.ops.histogram(OpKind::CreateLockRef)),
        ("acquireLock peek", music.ops.histogram(OpKind::AcquirePeek)),
        (
            "acquireLock grant",
            music.ops.histogram(OpKind::AcquireGrant),
        ),
        (
            "criticalPut (MUSIC)",
            music.ops.histogram(OpKind::CriticalPut),
        ),
        ("criticalPut (MSCP)", mscp.ops.histogram(OpKind::MscpPut)),
        ("releaseLock", music.ops.histogram(OpKind::ReleaseLock)),
    ];
    for (name, h) in rows {
        if !h.is_empty() {
            println!("  {name:<22} {:>9.2} ms", h.mean().as_millis_f64());
        }
    }
    println!(
        "  whole critical section: MUSIC {:.1} ms, MSCP {:.1} ms",
        music.section.mean().as_millis_f64(),
        mscp.section.mean().as_millis_f64()
    );
}

fn cmd_throughput(profile: LatencyProfile) {
    println!(
        "== quick write-throughput comparison on {} (reduced load) ==",
        profile.name()
    );
    let warmup = SimDuration::from_millis(500);
    let window = SimDuration::from_secs(2);
    let ev = cassa_ev_throughput(profile.clone(), 12, 10, warmup, window, 3);
    let mut run = ThroughputRun::new(profile.clone(), Mode::Music);
    run.threads = 48;
    run.warmup = warmup;
    run.window = window;
    let music = music_write_throughput(&run);
    run.mode = Mode::Mscp;
    let mscp = music_write_throughput(&run);
    println!("  CassaEV (eventual writes): {ev:>8.0} op/s");
    println!("  MUSIC   (critical section): {music:>7.0} op/s");
    println!("  MSCP    (LWT critical put): {mscp:>7.0} op/s");
    println!("  (full sweeps: cargo bench -p music-bench)");
}

/// `music-sim trace [profile] [--seed N]`: runs the seeded chaos scenario
/// with full tracing and prints JSON lines — one per event, then a
/// `metrics` line, then an `ecf` verdict line. Output is byte-identical
/// across runs with the same seed and profile.
fn cmd_trace(profile: LatencyProfile, seed: u64) {
    use music_repro::telemetry::{to_json_lines, Recorder};
    let run = music_repro::trace::run_chaos(profile, seed, Recorder::tracing());
    print!("{}", to_json_lines(&run.events));
    println!("{}", run.metrics.to_json());
    println!("{}", run.report.to_json());
    if !run.report.ok() {
        std::process::exit(1);
    }
}

/// `music-sim nemesis [profile|all] [--seed N] [--schedules K] [--mode M]
/// [--no-replay]`: runs `K` seeded nemesis fault schedules per profile
/// (seeds `N..N+K`), each against a randomized multi-client workload, and
/// prints one JSON verdict line per schedule. Unless `--mode` pins one,
/// the write mode cycles sync → pipelined → leased by seed. Every
/// schedule is re-run and its event log and metrics must replay
/// byte-identically (`--no-replay` skips that). Exits 1 if any schedule
/// violates ECF or fails to replay.
fn cmd_nemesis(
    profiles: Vec<LatencyProfile>,
    seed0: u64,
    schedules: u64,
    mode: Option<music::nemesis::RunMode>,
    replay: bool,
) {
    use music::nemesis::{run_nemesis, NemesisOptions, RunMode};
    use music_repro::telemetry::{to_json_lines, Recorder};
    let mut failures = 0u64;
    for profile in &profiles {
        for i in 0..schedules {
            let seed = seed0 + i;
            let m = mode.unwrap_or(RunMode::ALL[(seed % 3) as usize]);
            let run = run_nemesis(
                profile.clone(),
                seed,
                NemesisOptions::new(m),
                Recorder::tracing(),
            );
            let replay_identical = if replay {
                let again = run_nemesis(
                    profile.clone(),
                    seed,
                    NemesisOptions::new(m),
                    Recorder::tracing(),
                );
                to_json_lines(&run.events) == to_json_lines(&again.events)
                    && run.metrics.to_json() == again.metrics.to_json()
            } else {
                true
            };
            let ok = run.report.ok() && replay_identical;
            println!(
                "{{\"kind\":\"nemesis\",\"profile\":\"{}\",\"seed\":{seed},\
                 \"mode\":\"{}\",\"ok\":{ok},\"faults\":{},\"sectionsOk\":{},\
                 \"sectionsAbandoned\":{},\"grants\":{},\"zombieGrants\":{},\
                 \"staleReads\":{},\"stalePutAcks\":{},\"forcedReleases\":{},\
                 \"replayIdentical\":{replay_identical},\"finalTimeUs\":{}}}",
                profile.name(),
                m.name(),
                run.schedule.len(),
                run.sections_ok,
                run.sections_abandoned,
                run.report.grants,
                run.report.zombie_grants,
                run.report.stale_reads,
                run.report.stale_put_acks,
                run.report.forced_releases,
                run.final_time_us,
            );
            if !ok {
                failures += 1;
                eprintln!(
                    "nemesis FAILED: profile={} seed={seed} mode={}",
                    profile.name(),
                    m.name()
                );
                eprintln!("  schedule:");
                for line in &run.schedule {
                    eprintln!("    {line}");
                }
                for line in &run.outcomes {
                    eprintln!("  {line}");
                }
                if !replay_identical {
                    eprintln!("  replay diverged (event log or metrics not byte-identical)");
                }
                eprintln!("  {}", run.report.to_json());
            }
        }
    }
    if failures > 0 {
        eprintln!("nemesis: {failures} schedule(s) failed");
        std::process::exit(1);
    }
}

fn cmd_verify() {
    use music_repro::modelcheck::{CheckOutcome, Checker, MusicModel, Scope};
    println!("== bounded model check of the ECF invariants (§V) ==");
    let scopes = [
        ("sync puts", MusicModel::default()),
        (
            "pipelined puts (window 2)",
            MusicModel::new(Scope {
                max_puts: 2,
                pipeline_window: 2,
                ..Scope::default()
            }),
        ),
        (
            "leased re-entry (2 leases)",
            MusicModel::new(Scope {
                lease: true,
                max_leases: 2,
                ..Scope::default()
            }),
        ),
    ];
    for (name, model) in scopes {
        let out = Checker::default().run(&model);
        match out {
            CheckOutcome::Ok {
                states,
                depth,
                truncated,
            } => {
                println!(
                    "  {name}: OK, {states} states explored (depth {depth}, truncated: {truncated})"
                );
            }
            CheckOutcome::Violation { message, trace, .. } => {
                println!("  {name}: VIOLATION: {message}");
                for step in trace {
                    println!("    {step}");
                }
                std::process::exit(1);
            }
        }
    }
    println!("  invariants: critical-section, synchFlag, latest-state, queue sanity");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("help");
    // Flags may appear anywhere after the command; the first free operand
    // is the latency profile.
    let mut seed = 1u64;
    let mut schedules = 8u64;
    let mut mode: Option<music::nemesis::RunMode> = None;
    let mut replay = true;
    let mut profile_arg: Option<&str> = None;
    let mut rest = args[2.min(args.len())..].iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--seed" => {
                seed = rest
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--schedules" => {
                schedules = rest
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--schedules needs an integer");
            }
            "--mode" => {
                let m = rest.next().expect("--mode needs sync|pipelined|leased");
                mode = Some(
                    music::nemesis::RunMode::parse(m).expect("--mode needs sync|pipelined|leased"),
                );
            }
            "--no-replay" => replay = false,
            other => profile_arg = Some(other),
        }
    }
    let profile = profile_by_name(profile_arg);
    match cmd {
        "demo" => cmd_demo(profile),
        "latency" => cmd_latency(profile),
        "throughput" => cmd_throughput(profile),
        "trace" => cmd_trace(profile, seed),
        "nemesis" => {
            let profiles = if profile_arg == Some("all") {
                LatencyProfile::table_ii()
            } else {
                vec![profile]
            };
            cmd_nemesis(profiles, seed, schedules, mode, replay);
        }
        "verify" => cmd_verify(),
        "profiles" => cmd_profiles(),
        _ => {
            println!("music-sim — MUSIC (ICDCS 2020) reproduction driver");
            println!();
            println!("usage: music-sim <command> [profile] [--seed N]");
            println!("  demo        narrated critical section");
            println!("  latency     per-operation latency breakdown (Fig. 5(b))");
            println!("  throughput  quick CassaEV / MUSIC / MSCP comparison (Fig. 4(a))");
            println!("  trace       seeded chaos run -> JSON-lines event trace + ECF verdict");
            println!("  nemesis     randomized fault schedules -> per-schedule ECF verdicts");
            println!("              [profile|all] [--seed N] [--schedules K]");
            println!("              [--mode sync|pipelined|leased] [--no-replay]");
            println!("  verify      bounded model check of the ECF invariants (§V)");
            println!("  profiles    print the Table II latency profiles");
            println!();
            println!("profiles: 1l | 1Us (default) | 1UsEu");
        }
    }
}
