//! `music-sim` — command-line driver for the MUSIC reproduction.
//!
//! ```text
//! music-sim demo                  # a narrated critical section on 1Us
//! music-sim latency [profile]     # Fig. 5(b)-style operation breakdown
//! music-sim throughput [profile]  # quick Fig. 4(a)-style comparison
//! music-sim trace [p] [--seed N]  # seeded chaos run as a JSON-lines trace
//!                [--spans] [--node N] [--site S] [--trace-id T]
//! music-sim profile [--seed N] [--mode sync|pipelined|leased|all]
//!                [--compare BASELINE] [--mutant-slow-us U]
//!                                 # span-profiling workloads -> BENCH_<name>.json
//! music-sim nemesis [p|all] [--seed N] [--schedules K] [--mode M]
//!                [--online] [--drift-us E]
//!                                 # randomized fault schedules + ECF verdicts
//! music-sim verify [--online]     # bounded model check of the ECF invariants
//!                                 # (--online: differential checker sweep)
//! music-sim profiles              # print the Table II latency profiles
//! ```
//!
//! Everything runs in simulated (virtual) time and is deterministic.

use bytes::Bytes;
use music::{MusicSystemBuilder, OpKind};
use music_bench::music_runners::{
    cassa_ev_throughput, music_cs_latency, music_write_throughput, ThroughputRun,
};
use music_bench::setup::Mode;
use music_simnet::prelude::*;

fn profile_by_name(name: Option<&str>) -> LatencyProfile {
    match name.unwrap_or("1Us") {
        "1l" => LatencyProfile::one_l(),
        "1UsEu" => LatencyProfile::one_us_eu(),
        _ => LatencyProfile::one_us(),
    }
}

fn cmd_profiles() {
    println!("Table II latency profiles (RTT in ms):");
    for p in LatencyProfile::table_ii() {
        print!("  {:<6}", p.name());
        for a in 0..p.site_count() {
            for b in (a + 1)..p.site_count() {
                print!(
                    " {}-{}: {:>7.2}",
                    p.site_name(a),
                    p.site_name(b),
                    p.rtt(a, b).as_millis_f64()
                );
            }
        }
        println!();
    }
}

fn cmd_demo(profile: LatencyProfile) {
    println!(
        "== MUSIC critical section on the {} profile ==",
        profile.name()
    );
    let system = MusicSystemBuilder::new()
        .profile(profile)
        .seed(1)
        .telemetry(music_repro::telemetry::Recorder::metrics_only())
        .build();
    let sim = system.sim().clone();
    let client = system.client_at_site(0);
    let stats = system.stats().clone();
    sim.block_on(async move {
        let cs = client.enter("demo-key").await.expect("enter");
        println!("  entered critical section with {}", cs.lock_ref());
        let before = cs.get().await.expect("get");
        println!("  criticalGet  -> {before:?} (guaranteed latest)");
        cs.put(Bytes::from_static(b"hello-from-the-cli"))
            .await
            .expect("put");
        println!("  criticalPut  -> acknowledged at a quorum");
        let after = cs.get().await.expect("get");
        println!(
            "  criticalGet  -> {:?}",
            after.map(|v| String::from_utf8_lossy(&v).into_owned())
        );
        cs.release().await.expect("release");
        println!("  released");
    });
    println!("\nper-operation mean latency:");
    for kind in OpKind::ALL {
        let h = stats.histogram(kind);
        if !h.is_empty() {
            println!("  {kind:<20} {:>9.2} ms", h.mean().as_millis_f64());
        }
    }
    println!("\nprotocol counters:");
    music_bench::report::print_metrics(&system.recorder().metrics());
    println!("(virtual time elapsed: {})", system.sim().now());
}

fn cmd_latency(profile: LatencyProfile) {
    println!(
        "== operation latency breakdown on {} (5 critical sections) ==",
        profile.name()
    );
    let music = music_cs_latency(profile.clone(), Mode::Music, 1, 10, 5, 2);
    let mscp = music_cs_latency(profile, Mode::Mscp, 1, 10, 5, 2);
    let rows = [
        ("createLockRef", music.ops.histogram(OpKind::CreateLockRef)),
        ("acquireLock peek", music.ops.histogram(OpKind::AcquirePeek)),
        (
            "acquireLock grant",
            music.ops.histogram(OpKind::AcquireGrant),
        ),
        (
            "criticalPut (MUSIC)",
            music.ops.histogram(OpKind::CriticalPut),
        ),
        ("criticalPut (MSCP)", mscp.ops.histogram(OpKind::MscpPut)),
        ("releaseLock", music.ops.histogram(OpKind::ReleaseLock)),
    ];
    for (name, h) in rows {
        if !h.is_empty() {
            println!("  {name:<22} {:>9.2} ms", h.mean().as_millis_f64());
        }
    }
    println!(
        "  whole critical section: MUSIC {:.1} ms, MSCP {:.1} ms",
        music.section.mean().as_millis_f64(),
        mscp.section.mean().as_millis_f64()
    );
}

fn cmd_throughput(profile: LatencyProfile) {
    println!(
        "== quick write-throughput comparison on {} (reduced load) ==",
        profile.name()
    );
    let warmup = SimDuration::from_millis(500);
    let window = SimDuration::from_secs(2);
    let ev = cassa_ev_throughput(profile.clone(), 12, 10, warmup, window, 3);
    let mut run = ThroughputRun::new(profile.clone(), Mode::Music);
    run.threads = 48;
    run.warmup = warmup;
    run.window = window;
    let music = music_write_throughput(&run);
    run.mode = Mode::Mscp;
    let mscp = music_write_throughput(&run);
    println!("  CassaEV (eventual writes): {ev:>8.0} op/s");
    println!("  MUSIC   (critical section): {music:>7.0} op/s");
    println!("  MSCP    (LWT critical put): {mscp:>7.0} op/s");
    println!("  (full sweeps: cargo bench -p music-bench)");
}

/// `music-sim trace [profile] [--seed N] [--spans] [--node N] [--site S]
/// [--trace-id T]`: runs the seeded chaos scenario with full tracing.
///
/// Default output is JSON lines — one per event (after any `--node` /
/// `--site` / `--trace-id` filter), then a `metrics` line, then an
/// `ecfOnline` line (the streaming checker's verdict, computed during
/// the run), then the final `ecf` verdict line. With `--spans` it
/// instead prints the (filtered) span tree in the Chrome trace event
/// format (load in `chrome://tracing` or Perfetto), with the reports on
/// stderr. The checkers always see the *full* log; filters only trim
/// what is printed. Output is byte-identical across runs with the same
/// seed and profile. Exits 1 on an ECF violation, a queue-refinement
/// violation, or any online/offline verdict divergence.
#[allow(clippy::fn_params_excessive_bools)]
fn cmd_trace(
    profile: LatencyProfile,
    seed: u64,
    spans: bool,
    node: Option<u32>,
    site: Option<u32>,
    trace_id: Option<u64>,
) {
    use music_repro::telemetry::span::to_chrome_trace;
    use music_repro::telemetry::{to_json_lines, Recorder};
    use music_repro::trace::{filter_events, filter_spans};
    let run = music_repro::trace::run_chaos(profile, seed, Recorder::tracing());
    let online = run.online.as_ref().expect("tracing recorder");
    let diverged = online.ecf != run.report;
    if diverged {
        eprintln!("online checker diverged from the offline replay");
    }
    let ok = run.report.ok() && online.ok() && !diverged;
    if spans {
        print!(
            "{}",
            to_chrome_trace(&filter_spans(&run.spans, node, site, trace_id))
        );
        eprintln!("{}", run.span_report.to_json());
        eprintln!("{}", online.to_json());
        eprintln!("{}", run.report.to_json());
        if !ok || !run.span_report.ok() {
            std::process::exit(1);
        }
        return;
    }
    print!(
        "{}",
        to_json_lines(&filter_events(
            &run.events,
            &run.node_sites,
            node,
            site,
            trace_id
        ))
    );
    println!("{}", run.metrics.to_json());
    println!("{}", online.to_json());
    println!("{}", run.report.to_json());
    if !ok {
        std::process::exit(1);
    }
}

/// `music-sim profile [--seed N] [--mode sync|pipelined|leased|all]
/// [--name NAME] [--out FILE] [--compare FILE] [--tolerance PCT]
/// [--mutant-slow-us U]`: runs the canonical seeded span-profiling
/// workload and writes the `BENCH_<name>.json` artifact.
///
/// Every figure in the artifact is virtual-time-derived, so replays of
/// the same seed are byte-identical — the file is a committable baseline.
/// `--compare FILE` additionally runs the regression gate against a
/// committed baseline and exits 1 on any deviation beyond `--tolerance`
/// (percent, default 10). `--mutant-slow-us` adds artificial per-message
/// service latency — the deliberately slowed run CI uses to prove the
/// gate actually fires.
fn cmd_profile(
    seed: u64,
    mode: Option<&str>,
    name: &str,
    out_path: Option<&str>,
    compare_path: Option<&str>,
    tolerance_pct: f64,
    mutant_slow_us: u64,
) {
    use music_bench::profile::{
        bench_json, compare_benches, run_mode_profile, ModeKey, ProfileOptions,
    };
    let keys: Vec<ModeKey> = match mode {
        None | Some("all") => ModeKey::ALL.to_vec(),
        Some(m) => vec![ModeKey::parse(m).expect("--mode needs sync|pipelined|leased|all")],
    };
    let opts = ProfileOptions {
        seed,
        handicap_us: mutant_slow_us,
        ..ProfileOptions::default()
    };
    let wall = std::time::Instant::now();
    let mut modes = Vec::new();
    for key in keys {
        let m = run_mode_profile(key, &opts);
        println!(
            "{:<9} {} sections in {:.1} virtual s — {} protocol ops, {} sim events",
            m.key.name(),
            m.sections,
            m.virtual_us as f64 / 1e6,
            m.protocol_ops,
            m.executor.events(),
        );
        for (phase, st) in &m.phases {
            println!(
                "  {phase:<16} n={:<4} p50={:>9}µs p95={:>9}µs p99={:>9}µs p99.9={:>9}µs",
                st.count, st.p50_us, st.p95_us, st.p99_us, st.p999_us
            );
        }
        for s in &m.sites {
            println!(
                "  site {} grant-wait: entered={:<3} p50={:>9}µs p99.9={:>9}µs",
                s.site, s.entered, s.wait.p50_us, s.wait.p999_us
            );
        }
        if !m.span_report.ok() {
            eprintln!("span check FAILED: {}", m.span_report.to_json());
            std::process::exit(1);
        }
        if !m.online.ok() || !m.online_matches_offline {
            eprintln!("online check FAILED: {}", m.online.to_json());
            std::process::exit(1);
        }
        modes.push(m);
    }
    let json = bench_json(name, &opts, &modes);
    let total_events: u64 = modes.iter().map(|m| m.executor.events()).sum();
    eprintln!(
        "(wall clock: {:.2}s, ~{:.0} sim events/s)",
        wall.elapsed().as_secs_f64(),
        total_events as f64 / wall.elapsed().as_secs_f64().max(1e-9)
    );
    let out_file = out_path
        .map(String::from)
        .unwrap_or_else(|| format!("BENCH_{name}.json"));
    std::fs::write(&out_file, &json).expect("write BENCH artifact");
    println!("wrote {out_file}");
    if let Some(base_path) = compare_path {
        let baseline = std::fs::read_to_string(base_path).expect("read baseline");
        match compare_benches(&baseline, &json, tolerance_pct / 100.0) {
            Ok(violations) if violations.is_empty() => {
                println!("regression gate: OK against {base_path} (±{tolerance_pct}%)");
            }
            Ok(violations) => {
                eprintln!(
                    "regression gate: {} violation(s) against {base_path}:",
                    violations.len()
                );
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("regression gate: cannot compare: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The optional nemesis lanes, bundled so `cmd_nemesis` keeps a flat
/// signature as lanes accrete.
struct NemesisLanes {
    replay: bool,
    online: bool,
    drift_us: u64,
    flash_crowd: bool,
}

/// `music-sim nemesis [profile|all] [--seed N] [--schedules K] [--mode M]
/// [--no-replay] [--online] [--drift-us E]`: runs `K` seeded nemesis
/// fault schedules per profile (seeds `N..N+K`), each against a
/// randomized multi-client workload, and prints one JSON verdict line per
/// schedule. Unless `--mode` pins one, the write mode cycles sync →
/// pipelined → leased by seed. Every schedule is re-run and its event log
/// and metrics must replay byte-identically (`--no-replay` skips that).
/// `--online` adds the differential lane: the streaming checker's verdict
/// — computed during the run — must equal the offline replay exactly and
/// its queue refinement layer must be clean, per schedule. `--drift-us E`
/// composes the clock-drift lane with every schedule: each replica's
/// clock drifts within ±E µs and the ε lease guards are configured with
/// ε = E µs — the drift-safe envelope, which must stay ECF-clean.
/// `--flash-crowd` composes the flash-crowd lane: every client's middle
/// sections converge on one hot key while the contention-adaptive
/// controller (spin-then-queue, enqueue combining, lease auto-tuning,
/// anti-starvation) is enabled.
/// Exits 1 if any schedule violates ECF, fails to replay, or (with
/// `--online`) diverges.
fn cmd_nemesis(
    profiles: Vec<LatencyProfile>,
    seed0: u64,
    schedules: u64,
    mode: Option<music::nemesis::RunMode>,
    lanes: NemesisLanes,
) {
    use music::nemesis::{run_nemesis, NemesisOptions, RunMode};
    let NemesisLanes {
        replay,
        online,
        drift_us,
        flash_crowd,
    } = lanes;
    use music_repro::telemetry::{to_json_lines, Recorder};
    let options = |m| {
        let mut opts = NemesisOptions::new(m);
        if flash_crowd {
            // A crowd needs enough sections per client for distinct
            // warmup / crowd / drain phases.
            opts.sections_per_client = 8;
            opts = opts.with_flash_crowd();
        }
        if drift_us > 0 {
            opts.with_drift(
                SimDuration::from_micros(drift_us),
                SimDuration::from_micros(drift_us),
            )
        } else {
            opts
        }
    };
    let mut failures = 0u64;
    for profile in &profiles {
        for i in 0..schedules {
            let seed = seed0 + i;
            let m = mode.unwrap_or(RunMode::ALL[(seed % 3) as usize]);
            let run = run_nemesis(profile.clone(), seed, options(m), Recorder::tracing());
            let replay_identical = if replay {
                let again = run_nemesis(profile.clone(), seed, options(m), Recorder::tracing());
                to_json_lines(&run.events) == to_json_lines(&again.events)
                    && run.metrics.to_json() == again.metrics.to_json()
            } else {
                true
            };
            let rep = run.online.as_ref().expect("tracing recorder");
            let online_equal = rep.ecf == run.report;
            let online_ok = rep.ok() && online_equal;
            let online_suffix = if online {
                format!(
                    ",\"onlineOk\":{online_ok},\"onlineEqualsOffline\":{online_equal},\
                     \"queueChecked\":{},\"queueViolations\":{}",
                    rep.queue_checked,
                    rep.queue_violations.len()
                )
            } else {
                String::new()
            };
            let ok = run.report.ok() && replay_identical && (!online || online_ok);
            println!(
                "{{\"kind\":\"nemesis\",\"profile\":\"{}\",\"seed\":{seed},\
                 \"driftUs\":{drift_us},\"flashCrowd\":{flash_crowd},\
                 \"mode\":\"{}\",\"ok\":{ok},\"faults\":{},\"sectionsOk\":{},\
                 \"sectionsAbandoned\":{},\"grants\":{},\"zombieGrants\":{},\
                 \"staleReads\":{},\"stalePutAcks\":{},\"forcedReleases\":{},\
                 \"replayIdentical\":{replay_identical}{online_suffix},\"finalTimeUs\":{}}}",
                profile.name(),
                m.name(),
                run.schedule.len(),
                run.sections_ok,
                run.sections_abandoned,
                run.report.grants,
                run.report.zombie_grants,
                run.report.stale_reads,
                run.report.stale_put_acks,
                run.report.forced_releases,
                run.final_time_us,
            );
            if !ok {
                failures += 1;
                eprintln!(
                    "nemesis FAILED: profile={} seed={seed} mode={}",
                    profile.name(),
                    m.name()
                );
                eprintln!("  schedule:");
                for line in &run.schedule {
                    eprintln!("    {line}");
                }
                for line in &run.outcomes {
                    eprintln!("  {line}");
                }
                if !replay_identical {
                    eprintln!("  replay diverged (event log or metrics not byte-identical)");
                }
                if online && !online_ok {
                    eprintln!("  online checker diverged or flagged the queue:");
                    eprintln!("  {}", rep.to_json());
                }
                eprintln!("  {}", run.report.to_json());
            }
        }
    }
    if failures > 0 {
        eprintln!("nemesis: {failures} schedule(s) failed");
        std::process::exit(1);
    }
}

/// `music-sim verify --online [--seed N]`: the differential lane as a
/// CLI — replays seeded chaos and nemesis corpora through both checkers
/// and requires (a) identical ECF verdicts, online vs offline, and (b) a
/// clean queue-refinement layer. Exits 1 on any divergence.
fn cmd_verify_online(seed0: u64) {
    use music::nemesis::{run_nemesis, NemesisOptions, RunMode};
    use music_repro::telemetry::{check, Recorder};
    use music_repro::trace::run_chaos;
    println!("== differential check: streaming online vs offline replay ==");
    let mut failures = 0u64;
    for (i, seed) in (seed0..seed0 + 4).enumerate() {
        let run = run_chaos(LatencyProfile::one_us(), seed, Recorder::tracing());
        let rep = run.online.as_ref().expect("tracing recorder");
        let equal = rep.ecf == run.report;
        let ok = equal && rep.queue_violations.is_empty() && run.report.ok();
        println!(
            "  chaos   seed {seed}: {} ({} events, {} queue ops checked)",
            if ok { "verdicts agree" } else { "DIVERGED" },
            rep.events_seen,
            rep.queue_checked
        );
        if !ok {
            failures += 1;
            eprintln!("    online:  {}", rep.to_json());
            eprintln!("    offline: {}", run.report.to_json());
        }
        // Interleave a nemesis schedule per chaos seed, cycling modes.
        let m = RunMode::ALL[i % 3];
        let run = run_nemesis(
            LatencyProfile::one_us(),
            seed,
            NemesisOptions::new(m),
            Recorder::tracing(),
        );
        let rep = run.online.as_ref().expect("tracing recorder");
        let offline = check(&run.events);
        let equal = rep.ecf == offline;
        let ok = equal && rep.queue_violations.is_empty() && offline.ok();
        println!(
            "  nemesis seed {seed} ({}): {} ({} events, {} queue ops checked)",
            m.name(),
            if ok { "verdicts agree" } else { "DIVERGED" },
            rep.events_seen,
            rep.queue_checked
        );
        if !ok {
            failures += 1;
            eprintln!("    online:  {}", rep.to_json());
            eprintln!("    offline: {}", offline.to_json());
        }
    }
    if failures > 0 {
        eprintln!("verify --online: {failures} corpus run(s) diverged");
        std::process::exit(1);
    }
    println!("  all verdicts identical; queue refinement clean");
}

fn cmd_verify() {
    use music_repro::modelcheck::{CheckOutcome, Checker, MusicModel, Scope};
    println!("== bounded model check of the ECF invariants (§V) ==");
    let scopes = [
        ("sync puts", MusicModel::default()),
        (
            "pipelined puts (window 2)",
            MusicModel::new(Scope {
                max_puts: 2,
                pipeline_window: 2,
                ..Scope::default()
            }),
        ),
        (
            "leased re-entry (2 leases)",
            MusicModel::new(Scope {
                lease: true,
                max_leases: 2,
                ..Scope::default()
            }),
        ),
        (
            "drift-guarded leases (ε claim/break)",
            MusicModel::new(Scope {
                lease: true,
                max_leases: 2,
                drift: true,
                ..Scope::default()
            }),
        ),
        (
            "contention-adaptive (combining + window tuner)",
            MusicModel::new(Scope {
                lease: true,
                max_leases: 2,
                combine: true,
                adaptive_window: true,
                ..Scope::default()
            }),
        ),
    ];
    for (name, model) in scopes {
        let out = Checker::default().run(&model);
        match out {
            CheckOutcome::Ok {
                states,
                depth,
                truncated,
            } => {
                println!(
                    "  {name}: OK, {states} states explored (depth {depth}, truncated: {truncated})"
                );
            }
            CheckOutcome::Violation { message, trace, .. } => {
                println!("  {name}: VIOLATION: {message}");
                for step in trace {
                    println!("    {step}");
                }
                std::process::exit(1);
            }
        }
    }
    println!("  invariants: critical-section, synchFlag, latest-state, queue sanity, lease-floor");
}

/// `music-sim compare <baseline.json> <fresh.json> [--tolerance PCT]`:
/// the standalone BENCH regression gate. Compares every numeric leaf the
/// baseline names against the fresh artifact (extra fresh keys are fine —
/// additive evolution) and exits non-zero past the tolerance. CI uses it
/// to gate the socket-cluster `BENCH_load.json` against its committed
/// baseline, which deliberately omits wall-clock fields (`elapsedSecs`,
/// `sectionsPerSec` vary by runner) so the gate pins the structural
/// outcome: every section completed, zero errors, checker sampling on.
fn cmd_compare(base_path: &str, fresh_path: &str, tolerance_pct: f64) {
    use music_bench::profile::compare_benches;
    let baseline = std::fs::read_to_string(base_path).expect("read baseline");
    let fresh = std::fs::read_to_string(fresh_path).expect("read fresh artifact");
    match compare_benches(&baseline, &fresh, tolerance_pct / 100.0) {
        Ok(violations) if violations.is_empty() => {
            println!("regression gate: {fresh_path} OK against {base_path} (±{tolerance_pct}%)");
        }
        Ok(violations) => {
            eprintln!(
                "regression gate: {} violation(s) against {base_path}:",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("regression gate: cannot compare: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("help");
    // Flags may appear anywhere after the command; the first free operand
    // is the latency profile.
    let mut seed = 1u64;
    let mut schedules = 8u64;
    let mut mode_raw: Option<String> = None;
    let mut replay = true;
    let mut online = false;
    let mut spans = false;
    let mut node: Option<u32> = None;
    let mut site: Option<u32> = None;
    let mut trace_id: Option<u64> = None;
    let mut name = String::from("baseline");
    let mut out_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut tolerance_pct = 10.0f64;
    let mut mutant_slow_us = 0u64;
    let mut drift_us = 0u64;
    let mut flash_crowd = false;
    let mut free: Vec<&str> = Vec::new();
    let mut rest = args[2.min(args.len())..].iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--seed" => {
                seed = rest
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--schedules" => {
                schedules = rest
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--schedules needs an integer");
            }
            "--mode" => {
                mode_raw = Some(rest.next().expect("--mode needs an operand").clone());
            }
            "--no-replay" => replay = false,
            "--online" => online = true,
            "--spans" => spans = true,
            "--node" => {
                node = Some(
                    rest.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--node needs an integer"),
                );
            }
            "--site" => {
                site = Some(
                    rest.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--site needs an integer"),
                );
            }
            "--trace-id" => {
                trace_id = Some(
                    rest.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--trace-id needs an integer"),
                );
            }
            "--name" => {
                name = rest.next().expect("--name needs an operand").clone();
            }
            "--out" => {
                out_path = Some(rest.next().expect("--out needs a path").clone());
            }
            "--compare" => {
                compare_path = Some(rest.next().expect("--compare needs a path").clone());
            }
            "--tolerance" => {
                tolerance_pct = rest
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance needs a number (percent)");
            }
            "--mutant-slow-us" => {
                mutant_slow_us = rest
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--mutant-slow-us needs an integer");
            }
            "--drift-us" => {
                drift_us = rest
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--drift-us needs an integer (µs; max skew = ε)");
            }
            "--flash-crowd" => flash_crowd = true,
            other => free.push(other),
        }
    }
    let profile_arg = free.first().copied();
    let profile = profile_by_name(profile_arg);
    match cmd {
        "demo" => cmd_demo(profile),
        "latency" => cmd_latency(profile),
        "throughput" => cmd_throughput(profile),
        "trace" => cmd_trace(profile, seed, spans, node, site, trace_id),
        "profile" => cmd_profile(
            seed,
            mode_raw.as_deref(),
            &name,
            out_path.as_deref(),
            compare_path.as_deref(),
            tolerance_pct,
            mutant_slow_us,
        ),
        "nemesis" => {
            let profiles = if profile_arg == Some("all") {
                LatencyProfile::table_ii()
            } else {
                vec![profile]
            };
            let mode = mode_raw.as_deref().map(|m| {
                music::nemesis::RunMode::parse(m).expect("--mode needs sync|pipelined|leased")
            });
            cmd_nemesis(
                profiles,
                seed,
                schedules,
                mode,
                NemesisLanes {
                    replay,
                    online,
                    drift_us,
                    flash_crowd,
                },
            );
        }
        "verify" => {
            if online {
                cmd_verify_online(seed);
            } else {
                cmd_verify();
            }
        }
        "compare" => {
            let (Some(base_path), Some(fresh_path)) = (free.first(), free.get(1)) else {
                eprintln!(
                    "usage: music-sim compare <baseline.json> <fresh.json> [--tolerance PCT]"
                );
                std::process::exit(2);
            };
            cmd_compare(base_path, fresh_path, tolerance_pct);
        }
        "profiles" => cmd_profiles(),
        _ => {
            println!("music-sim — MUSIC (ICDCS 2020) reproduction driver");
            println!();
            println!("usage: music-sim <command> [profile] [--seed N]");
            println!("  demo        narrated critical section");
            println!("  latency     per-operation latency breakdown (Fig. 5(b))");
            println!("  throughput  quick CassaEV / MUSIC / MSCP comparison (Fig. 4(a))");
            println!("  trace       seeded chaos run -> JSON-lines event trace + ECF verdict");
            println!("              [--spans] (Chrome-trace span export)");
            println!("              [--node N] [--site S] [--trace-id T] (output filters)");
            println!("  profile     seeded span-profiling workloads -> BENCH_<name>.json");
            println!("              [--seed N] [--mode sync|pipelined|leased|all] [--name NAME]");
            println!("              [--out FILE] [--compare BASELINE] [--tolerance PCT]");
            println!("              [--mutant-slow-us U]");
            println!("  compare     BENCH regression gate on two artifacts");
            println!("              compare <baseline.json> <fresh.json> [--tolerance PCT]");
            println!("  nemesis     randomized fault schedules -> per-schedule ECF verdicts");
            println!("              [profile|all] [--seed N] [--schedules K]");
            println!("              [--mode sync|pipelined|leased] [--no-replay]");
            println!("              [--online] (streaming verdict must equal offline)");
            println!("              [--drift-us E] (replica clocks skewed within ±E µs, ε = E)");
            println!("              [--flash-crowd] (hot-key crowd + adaptive controller)");
            println!("  verify      bounded model check of the ECF invariants (§V)");
            println!("              [--online] (differential online-vs-offline sweep)");
            println!("  profiles    print the Table II latency profiles");
            println!();
            println!("profiles: 1l | 1Us (default) | 1UsEu");
        }
    }
}
