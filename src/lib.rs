//! # music-repro
//!
//! Facade crate for the MUSIC reproduction workspace (ICDCS 2020:
//! *MUSIC: Multi-Site Critical Sections over Geo-Distributed State*).
//! Re-exports every member crate under a short name so the examples and
//! integration tests depend on a single crate.
//!
//! Layering (bottom up):
//!
//! * [`simnet`] — deterministic discrete-event runtime + WAN model,
//! * [`paxos`] — pure single-decree Paxos state machines,
//! * [`quorumstore`] — Cassandra-like replicated store (eventual / quorum /
//!   LWT paths),
//! * [`lockstore`] — per-key lock-reference queues over LWTs,
//! * [`music`] — the critical-section abstraction with ECF semantics,
//! * [`zab`], [`cdb`] — ZooKeeper-like and CockroachDB-like baselines,
//! * [`modelcheck`] — bounded verification of the ECF invariants,
//! * [`workload`] — YCSB-style generators,
//! * [`telemetry`] — causal event tracing, counters, and the trace-based
//!   ECF checker (see [`trace`] for the `music-sim trace` scenario).
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub mod trace;

pub use music;
pub use music_apps as apps;
pub use music_cdb as cdb;
pub use music_lockstore as lockstore;
pub use music_modelcheck as modelcheck;
pub use music_paxos as paxos;
pub use music_quorumstore as quorumstore;
pub use music_simnet as simnet;
pub use music_telemetry as telemetry;
pub use music_workload as workload;
pub use music_zab as zab;
