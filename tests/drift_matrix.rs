//! The drift test matrix: drift-safe leases under hostile time.
//!
//! Two lanes of evidence:
//!
//! * **Sweep** — seeded nemesis schedules with every MUSIC replica on a
//!   skewed clock, over drift magnitudes `{0, ε/2, ε}` × run modes
//!   `{sync, pipelined, leased}`. Every cell must end ECF-clean, with the
//!   streaming verdict equal to the offline replay and a clean lock-queue
//!   refinement: per-node |skew| ≤ ε is exactly what the ε claim/break
//!   guards tolerate.
//! * **Unsafe region** — beyond ε the guards provably cannot protect the
//!   lease fast path. The scripted demonstration
//!   ([`run_drift_unsafe_demo`]) pins the race deterministically: a
//!   holder slow by ≫ 2ε resurrects a revoked lease off a stale local
//!   view, the queue refinement flags it, and the whole failure replays
//!   byte-identically.

use music::nemesis::{run_drift_unsafe_demo, run_nemesis, NemesisOptions, RunMode};
use music_repro::telemetry::{to_json_lines, Recorder};
use music_simnet::prelude::*;

/// The ε the sweep configures, and the skew points measured against it.
const EPSILON: SimDuration = SimDuration::from_micros(2_000);

fn drift_run(mode: RunMode, seed: u64, max_skew: SimDuration) -> music::nemesis::NemesisRun {
    let opts = NemesisOptions::new(mode).with_drift(max_skew, EPSILON);
    run_nemesis(LatencyProfile::one_us(), seed, opts, Recorder::tracing())
}

#[test]
fn drift_matrix_within_epsilon_is_clean() {
    let skews = [
        ("0", SimDuration::ZERO),
        ("eps/2", SimDuration::from_micros(EPSILON.as_micros() / 2)),
        ("eps", EPSILON),
    ];
    for (mode_i, mode) in RunMode::ALL.into_iter().enumerate() {
        for (skew_i, (label, skew)) in skews.iter().enumerate() {
            let seed = 31 + (mode_i * skews.len() + skew_i) as u64;
            let run = drift_run(mode, seed, *skew);
            assert!(
                run.report.ok(),
                "mode {} skew {label}: ECF violated: {:?}",
                mode.name(),
                run.report.violations
            );
            assert!(
                run.sections_ok >= 1,
                "mode {} skew {label}: no section completed",
                mode.name()
            );
            let online = run.online.as_ref().expect("tracing attaches the checker");
            assert_eq!(
                online.ecf,
                run.report,
                "mode {} skew {label}: online ECF verdict diverged from offline",
                mode.name()
            );
            assert!(
                online.queue_violations.is_empty(),
                "mode {} skew {label}: queue refinement violated: {:?}",
                mode.name(),
                online.queue_violations
            );
        }
    }
}

#[test]
fn drifted_runs_replay_byte_identically() {
    let a = drift_run(RunMode::Leased, 57, EPSILON);
    let b = drift_run(RunMode::Leased, 57, EPSILON);
    assert_eq!(
        to_json_lines(&a.events),
        to_json_lines(&b.events),
        "drifted leased run must replay byte-identically"
    );
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert_eq!(a.final_time_us, b.final_time_us);
}

#[test]
fn drift_lane_is_recorded_in_schedule_and_events() {
    let run = drift_run(RunMode::Leased, 57, EPSILON);
    assert!(
        run.schedule
            .first()
            .is_some_and(|l| l.contains("clockDrift")),
        "drift lane must lead the schedule: {:?}",
        run.schedule
    );
    let injects = run
        .events
        .iter()
        .filter(|e| {
            matches!(
                &e.kind,
                music_repro::telemetry::EventKind::FaultInject { fault, .. }
                    if *fault == "clockDrift"
            )
        })
        .count();
    assert_eq!(injects, 3, "one standing clockDrift inject per replica");
}

// --- the unsafe region (>ε), scripted and asserted -----------------------

/// The demo's ε: generous so the revocation's quorum latency (a WAN RTT
/// or two on the 1Us profile) fits comfortably inside the scripted race
/// margins.
const DEMO_EPSILON: SimDuration = SimDuration::from_millis(200);

#[test]
fn beyond_epsilon_resurrects_a_collected_lease() {
    // A holder slow by 4ε — far beyond the 2ε pairwise envelope the
    // guards tolerate — claims the revoked lease off its stale view.
    let demo = run_drift_unsafe_demo(
        SimDuration::from_millis(800),
        DEMO_EPSILON,
        Recorder::tracing(),
    );
    assert_eq!(demo.revocations, 1, "the watchdog must revoke the lease");
    assert_eq!(
        demo.claim_outcomes,
        vec!["acquired", "acquired"],
        "the slow holder must re-claim the collected lease"
    );
    // End-to-end ECF excuses the resurrection (zombie grants are void and
    // the data plane stays v2s-dominated) ...
    assert!(
        demo.report.ok(),
        "offline ECF is expected to excuse the zombie: {:?}",
        demo.report.violations
    );
    assert!(
        demo.report.zombie_grants >= 1,
        "the claim is a zombie grant"
    );
    // ... but the lock-queue refinement sees the collected reference act
    // as a holder again: the documented unsafe-region violation.
    let online = demo.online.as_ref().expect("tracing attaches the checker");
    assert!(
        !online.queue_violations.is_empty(),
        "queue refinement must flag the resurrection"
    );
    assert!(
        online
            .queue_violations
            .iter()
            .any(|v| v.contains("re-grant of collected reference")),
        "expected a resurrection violation, got: {:?}",
        online.queue_violations
    );
}

#[test]
fn unsafe_region_reproduces_byte_deterministically() {
    let a = run_drift_unsafe_demo(
        SimDuration::from_millis(800),
        DEMO_EPSILON,
        Recorder::tracing(),
    );
    let b = run_drift_unsafe_demo(
        SimDuration::from_millis(800),
        DEMO_EPSILON,
        Recorder::tracing(),
    );
    assert!(!a.online.as_ref().unwrap().queue_violations.is_empty());
    assert_eq!(
        to_json_lines(&a.events),
        to_json_lines(&b.events),
        "the violation must reproduce byte-identically"
    );
    assert_eq!(a.final_time_us, b.final_time_us);
}

#[test]
fn inside_the_margin_the_guard_rejects_with_telemetry() {
    // Slow by 2ε: when the holder polls, its clock still reads the lease
    // as live (now < until) but within ε of expiry — the claim guard
    // turns it away and says why.
    let demo = run_drift_unsafe_demo(
        SimDuration::from_millis(400),
        DEMO_EPSILON,
        Recorder::tracing(),
    );
    assert_eq!(demo.revocations, 1);
    assert!(
        demo.claim_outcomes.iter().all(|o| *o == "noLongerHolder"),
        "the guard must reject the claim: {:?}",
        demo.claim_outcomes
    );
    assert!(
        demo.claim_drift_rejects >= 1,
        "rejections inside the margin must emit leaseDriftReject"
    );
    let online = demo.online.as_ref().expect("tracing attaches the checker");
    assert!(online.ok(), "guarded run must stay clean");
    assert!(demo.report.ok());
}

#[test]
fn at_epsilon_the_same_schedule_is_safe() {
    // Slow by exactly ε: the claim lands past expiry even on the
    // holder's clock — a plain expired-lease rejection, no drift margin
    // involved, everything clean.
    let demo = run_drift_unsafe_demo(DEMO_EPSILON, DEMO_EPSILON, Recorder::tracing());
    assert_eq!(demo.revocations, 1);
    assert!(
        demo.claim_outcomes.iter().all(|o| *o == "noLongerHolder"),
        "the guard must reject the claim: {:?}",
        demo.claim_outcomes
    );
    assert_eq!(demo.claim_drift_rejects, 0);
    let online = demo.online.as_ref().expect("tracing attaches the checker");
    assert!(online.ok(), "ε-bounded run must stay clean");
    assert!(demo.report.ok());
}
