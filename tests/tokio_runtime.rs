//! Socket-runtime smoke test: an in-process 3-replica cluster on loopback
//! ports, driven through the full MUSIC client stack — the library-level
//! twin of `scripts/local_cluster.sh`.
//!
//! Naming note: the issue that introduced the runtime split planned a
//! tokio-backed production runtime, and this file keeps that checklist
//! name. The workspace vendors no tokio, so the real-socket runtime is
//! the hand-rolled [`music_runtime::NativeRuntime`] (single-threaded
//! executor over `std::time`, with per-connection OS threads doing socket
//! IO) — same trait surface, same protocol code.

use bytes::Bytes;
use music::node::{remote_client, serve_node_frame, CLIENT_ID_BASE};
use music::prelude::*;
use music_lockstore::LockPartition;
use music_quorumstore::{DataRow, TableReplica};
use music_runtime::{NativeRuntime, TcpServer};
use music_telemetry::Recorder;

#[test]
fn three_replica_loopback_cluster_round_trips() {
    let rt = NativeRuntime::new();

    // Bind three ephemeral loopback ports, then serve a full storage
    // replica (data + lock tables behind the store-tag mux) on each.
    let mut peers = Vec::new();
    let mut servers = Vec::new();
    for id in 1..=3u32 {
        let server = TcpServer::bind("127.0.0.1:0".parse().unwrap()).expect("bind loopback");
        peers.push((id, server.local_addr()));
        servers.push(server);
    }
    let mut shutdowns = Vec::new();
    let mut serve_handles = Vec::new();
    for server in servers {
        shutdowns.push(server.shutdown_handle());
        let mut data = TableReplica::<DataRow>::default();
        let mut locks = TableReplica::<LockPartition>::default();
        serve_handles
            .push(server.serve(&rt, move |raw| serve_node_frame(&mut data, &mut locks, raw)));
    }

    let client = remote_client(
        &rt,
        CLIENT_ID_BASE,
        &peers,
        3,
        MusicConfig::default(),
        Recorder::off(),
    )
    .expect("client over sockets");

    rt.block_on(async move {
        // Two full critical sections: the second round proves the first
        // round's state survived real socket round trips.
        for round in 1..=2u64 {
            let cs = client.enter("counter").await.expect("enter");
            let prev = cs.get().await.expect("criticalGet");
            let n = prev.map_or(0, |b| {
                u64::from_be_bytes(b.as_ref().try_into().expect("counter width"))
            });
            assert_eq!(n, round - 1, "latest state over sockets");
            cs.put(Bytes::copy_from_slice(&round.to_be_bytes()))
                .await
                .expect("criticalPut");
            cs.release().await.expect("release");
        }
        // Outside any section, the eventual read still sees the data.
        let v = client.get("counter").await.expect("eventualGet");
        assert_eq!(v, Some(Bytes::copy_from_slice(&2u64.to_be_bytes())));
    });

    // Clean shutdown: stop all three servers and drain their serve tasks.
    for s in &shutdowns {
        s.shutdown();
    }
    rt.block_on(async move {
        for h in serve_handles {
            h.await;
        }
    });
    assert_eq!(rt.live_tasks(), 0, "shutdown leaves no serve tasks behind");
}
