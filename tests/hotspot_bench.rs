//! Contention-adaptive locking, proven end-to-end: the flash-crowd
//! before/after bench (adaptive must at least double the fixed config's
//! crowd-window sections on a θ = 1.2 hot-key crowd), byte-identical
//! replay of an adaptive run, and the starvation regression (a near
//! client must not monopolize a hot key via 0-RTT lease re-entries while
//! a far site pays the break path forever).
//!
//! The throughput duel runs for a **fixed virtual horizon** and counts
//! completed sections, so livelock is measurable: a configuration that
//! collapses under the crowd finishes *fewer sections* instead of
//! hanging the test. Sections are counted separately inside the crowd
//! window — outside it both configurations run the same low-contention
//! Zipfian workload, which would dilute the ratio.

use bytes::Bytes;
use music_repro::music::{ContentionKnobs, MusicConfig, MusicError, MusicSystemBuilder, Watchdog};
use music_repro::simnet::prelude::*;
use music_repro::telemetry::{Recorder, Scope};
use music_repro::workload::Zipfian;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEED: u64 = 42;
const KEYS: u64 = 8;

struct CrowdRun {
    total: u64,
    crowd: u64,
    virtual_us: u64,
    recorder: Recorder,
}

/// One fixed-horizon flash-crowd run: `clients` clients spread over the
/// 1Us sites loop critical sections until the virtual horizon. Key
/// choice is Zipfian θ = 1.2 over a small keyspace, except inside the
/// crowd window ([20%, 85%) of the horizon) where every client converges
/// on the hot key `k0`. Clients honor the admission guard's
/// `Overloaded { retry_after }` hint; a watchdog collects the parked
/// references that client failovers can orphan mid-enqueue (without it
/// a wedged queue head would stall the drain in *both* configurations).
fn run_flash_crowd(knobs: ContentionKnobs, clients: usize, horizon_s: u64) -> CrowdRun {
    let recorder = Recorder::metrics_only();
    let cfg = MusicConfig::builder()
        .lease_window(SimDuration::from_secs(2))
        .contention(knobs)
        .build();
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .music_config(cfg)
        .seed(SEED)
        .telemetry(recorder.clone())
        .build();
    let sim = sys.sim().clone();
    let sites = sys.replicas().len();
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_secs(2));
    for k in 0..KEYS {
        dog.watch(&format!("k{k}"));
    }
    dog.spawn();
    let sys2 = sys.clone();
    let (total, crowd) = sim.block_on(async move {
        let sim = sys2.sim().clone();
        let deadline = SimTime::from_micros(horizon_s * 1_000_000);
        let crowd_from = SimTime::from_micros(horizon_s * 200_000);
        let crowd_to = SimTime::from_micros(horizon_s * 850_000);
        let mut handles = Vec::new();
        for c in 0..clients {
            let client = sys2.client_at_site(c % sites);
            let sim2 = sim.clone();
            handles.push(sim.spawn(async move {
                let zipf = Zipfian::with_theta(KEYS, 1.2);
                let mut rng = SmallRng::seed_from_u64(SEED ^ (c as u64) << 17);
                let mut done = 0u64;
                let mut crowd_done = 0u64;
                while sim2.now() < deadline {
                    let now = sim2.now();
                    let key = if now >= crowd_from && now < crowd_to {
                        "k0".to_string()
                    } else {
                        format!("k{}", zipf.sample(&mut rng))
                    };
                    match client.enter(&key).await {
                        Ok(cs) => {
                            cs.put(Bytes::from_static(b"v")).await.expect("put");
                            cs.release().await.expect("release");
                            done += 1;
                            let now = sim2.now();
                            if now >= crowd_from && now < crowd_to {
                                crowd_done += 1;
                            }
                        }
                        Err(MusicError::Overloaded { retry_after }) => {
                            sim2.sleep(retry_after).await;
                        }
                        Err(_) => sim2.sleep(SimDuration::from_millis(5)).await,
                    }
                    // A short think time: long enough that leasing is
                    // *plausible*, short enough that the crowd stays hot.
                    sim2.sleep(SimDuration::from_millis(1)).await;
                }
                (done, crowd_done)
            }));
        }
        let mut total = 0u64;
        let mut crowd = 0u64;
        for h in handles {
            let (d, cd) = h.await;
            total += d;
            crowd += cd;
        }
        (total, crowd)
    });
    dog.stop();
    CrowdRun {
        total,
        crowd,
        virtual_us: sys.sim().now().as_micros(),
        recorder,
    }
}

/// The ISSUE acceptance bar: at Zipfian θ = 1.2 with a flash crowd,
/// adaptive sustains ≥ 2× the fixed configuration's sections/sec. Both
/// configurations get the same clients, horizon, and seed; the ratio is
/// taken over the crowd window where the contention actually is. Heavy
/// (two 30-client WAN runs): run with `--include-ignored` in release —
/// the CI hotspot-bench job does.
#[test]
#[ignore = "heavy: two 30-client fixed-horizon runs; CI runs with --include-ignored in release"]
fn adaptive_doubles_fixed_throughput_on_the_flash_crowd() {
    let clients = 30;
    let horizon_s = 40;
    let fixed = run_flash_crowd(ContentionKnobs::default(), clients, horizon_s);
    let adaptive = run_flash_crowd(ContentionKnobs::adaptive(), clients, horizon_s);
    assert!(
        fixed.crowd >= 1 && adaptive.crowd >= 1,
        "both configs must make progress in the crowd: \
         fixed {} adaptive {}",
        fixed.crowd,
        adaptive.crowd
    );
    assert!(
        adaptive.crowd as f64 >= 2.0 * fixed.crowd as f64,
        "adaptive must at least double flash-crowd throughput: \
         fixed {}/{} sections (crowd/total) in {}us, \
         adaptive {}/{} in {}us (crowd ratio {:.2})",
        fixed.crowd,
        fixed.total,
        fixed.virtual_us,
        adaptive.crowd,
        adaptive.total,
        adaptive.virtual_us,
        adaptive.crowd as f64 / fixed.crowd as f64
    );
    // Adaptivity must not cost the quiet parts of the run either.
    assert!(
        adaptive.total >= fixed.total,
        "adaptive must not regress overall: fixed {} vs adaptive {}",
        fixed.total,
        adaptive.total
    );
    // The speedup must come from the controller actually engaging:
    // mode switches, combined enqueue rounds, and admission rejects
    // are the three mechanisms under test.
    let metrics = adaptive.recorder.metrics();
    assert!(
        metrics.total("strategy_switches") >= 1,
        "the crowd must drive at least one key Hot"
    );
    assert!(
        metrics.total("enqueue_combines") >= 1,
        "same-site waiters must have batched at least one enqueue round"
    );
    assert!(
        metrics.total("admission_rejects") >= 1,
        "the bounded queue must have fast-rejected part of the crowd"
    );
}

#[test]
fn flash_crowd_runs_replay_byte_identically() {
    let a = run_flash_crowd(ContentionKnobs::adaptive(), 8, 12);
    let b = run_flash_crowd(ContentionKnobs::adaptive(), 8, 12);
    assert_eq!(a.total, b.total, "sections must replay identically");
    assert_eq!(
        a.virtual_us, b.virtual_us,
        "virtual elapsed must replay identically"
    );
    assert_eq!(
        a.recorder.metrics().to_json(),
        b.recorder.metrics().to_json(),
        "metrics must replay byte-identically"
    );
}

/// Two-site asymmetric-RTT hotspot: a near client (site 0, co-located
/// with the quorum majority on the 1UsEu profile) and a far client (site
/// 2, across the Atlantic) both hammer one key for a fixed virtual
/// horizon. Returns per-site `sections_entered`.
fn run_hotspot_duel(knobs: ContentionKnobs) -> (u64, u64) {
    let recorder = Recorder::metrics_only();
    let cfg = MusicConfig::builder()
        .lease_window(SimDuration::from_secs(2))
        .contention(knobs)
        .build();
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us_eu())
        .music_config(cfg)
        .seed(SEED)
        .telemetry(recorder.clone())
        .build();
    let sim = sys.sim().clone();
    let near_site = 0usize;
    let far_site = 2usize;
    let sys2 = sys.clone();
    sim.block_on(async move {
        let sim = sys2.sim().clone();
        let deadline = SimTime::from_micros(20_000_000);
        let mut handles = Vec::new();
        for (site, stagger_us) in [(near_site, 0u64), (far_site, 500)] {
            let client = sys2.client_at_site(site);
            let sim2 = sim.clone();
            handles.push(sim.spawn(async move {
                sim2.sleep(SimDuration::from_micros(stagger_us)).await;
                while sim2.now() < deadline {
                    let Ok(cs) = client.enter("hot").await else {
                        sim2.sleep(SimDuration::from_millis(5)).await;
                        continue;
                    };
                    let _ = cs.put(Bytes::from_static(b"v")).await;
                    let _ = cs.release().await;
                    // Near-zero think time: the regime where a cached
                    // lease lets the holder monopolize the key.
                    sim2.sleep(SimDuration::from_micros(200)).await;
                }
            }));
        }
        for h in handles {
            h.await;
        }
    });
    let metrics = recorder.metrics();
    let near = metrics.get(Scope::Site(near_site as u32), "sections_entered");
    let far = metrics.get(Scope::Site(far_site as u32), "sections_entered");
    (near, far)
}

#[test]
fn adaptive_bounds_per_site_starvation_on_the_hotspot() {
    let (fixed_near, fixed_far) = run_hotspot_duel(ContentionKnobs::default());
    let (adaptive_near, adaptive_far) = run_hotspot_duel(ContentionKnobs::adaptive());
    assert!(
        fixed_near >= 1 && fixed_far >= 1 && adaptive_near >= 1 && adaptive_far >= 1,
        "both sites must make progress in both configs: \
         fixed ({fixed_near}, {fixed_far}), adaptive ({adaptive_near}, {adaptive_far})"
    );
    let ratio = |a: u64, b: u64| a.max(b) as f64 / a.min(b) as f64;
    let adaptive_ratio = ratio(adaptive_near, adaptive_far);
    // The adaptive controller strictly bounds the per-site imbalance: the
    // fast-side/slow-side sections ratio stays under 3 even though the
    // near client *could* re-enter over its lease at 0 WAN RTTs, and the
    // fairness-triggered lease suspension + empty-queue yield are what
    // keep the far site fed.
    assert!(
        adaptive_ratio <= 3.0,
        "adaptive per-site ratio must stay bounded, got {adaptive_ratio:.2} \
         ({adaptive_near} vs {adaptive_far})"
    );
    // Fairness must not be bought with throughput: the fixed config is
    // "fair" here only because its LWT races collapse *both* sites to a
    // crawl. Adaptive must be fair while completing at least twice the
    // fixed config's total sections.
    let fixed_total = fixed_near + fixed_far;
    let adaptive_total = adaptive_near + adaptive_far;
    assert!(
        adaptive_total >= 2 * fixed_total,
        "adaptive must stay fast while fair: fixed total {fixed_total} \
         ({fixed_near} vs {fixed_far}), adaptive total {adaptive_total} \
         ({adaptive_near} vs {adaptive_far})"
    );
}
