//! Zero-perturbation and reproducibility guarantees of the telemetry
//! layer: recording is pure bookkeeping, so a run's virtual-time schedule
//! must be identical whether the recorder is off, counting, or tracing —
//! and two traced runs of the same seed must serialize byte-for-byte
//! identically.

use music_repro::telemetry::{to_json_lines, Recorder};
use music_repro::trace::run_chaos;
use music_simnet::prelude::*;

#[test]
fn tracing_does_not_perturb_the_schedule() {
    let seed = 42;
    let off = run_chaos(LatencyProfile::one_us(), seed, Recorder::off());
    let counting = run_chaos(LatencyProfile::one_us(), seed, Recorder::metrics_only());
    let tracing = run_chaos(LatencyProfile::one_us(), seed, Recorder::tracing());

    assert_eq!(off.final_time_us, tracing.final_time_us);
    assert_eq!(off.final_time_us, counting.final_time_us);
    assert_eq!(off.outcomes, tracing.outcomes);
    assert_eq!(off.outcomes, counting.outcomes);

    // The cheaper modes really are cheaper: no events off/counting, no
    // counters when off.
    assert!(off.events.is_empty());
    assert!(off.metrics.is_empty());
    assert!(counting.events.is_empty());
    assert!(!counting.metrics.is_empty());
    assert!(!tracing.events.is_empty());
    // Tracing and counting agree on every counter.
    assert_eq!(counting.metrics.to_json(), tracing.metrics.to_json());
}

#[test]
fn same_seed_serializes_byte_identically() {
    let a = run_chaos(LatencyProfile::one_us(), 7, Recorder::tracing());
    let b = run_chaos(LatencyProfile::one_us(), 7, Recorder::tracing());
    assert_eq!(to_json_lines(&a.events), to_json_lines(&b.events));
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn different_seeds_diverge() {
    let a = run_chaos(LatencyProfile::one_us(), 7, Recorder::tracing());
    let b = run_chaos(LatencyProfile::one_us(), 8, Recorder::tracing());
    // Loss/jitter draws differ, so the schedules (and hence the traces)
    // must differ somewhere.
    assert_ne!(to_json_lines(&a.events), to_json_lines(&b.events));
}
