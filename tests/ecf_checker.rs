//! End-to-end acceptance of the trace-based ECF checker: a genuine chaos
//! run — lockholder crash mid-`criticalPut`, watchdog preemption, site
//! partitions — produces a trace the checker accepts, while deliberate
//! corruptions of the same trace are flagged.

use music_repro::telemetry::{check, check_online, EventKind, Recorder};
use music_repro::trace::run_chaos;
use music_simnet::prelude::*;

#[test]
fn chaos_trace_satisfies_ecf() {
    let run = run_chaos(LatencyProfile::one_us(), 7, Recorder::tracing());
    assert!(
        run.report.ok(),
        "chaos run violated ECF: {:?}",
        run.report.violations
    );
    // The interesting machinery actually engaged.
    assert!(run.report.grants >= 4, "expected >= 4 grants");
    assert!(run.report.forced_releases >= 1, "watchdog never preempted");
    assert!(run.report.reads_checked >= 2, "no critical reads checked");
    // The streaming checker, attached during the run, agrees in full.
    let online = run.online.expect("tracing run carries an online report");
    assert_eq!(online.ecf, run.report, "online verdict diverged");
    assert!(
        online.queue_violations.is_empty(),
        "queue refinement false-positive: {:?}",
        online.queue_violations
    );
}

#[test]
fn corrupted_read_digest_is_flagged() {
    let run = run_chaos(LatencyProfile::one_us(), 7, Recorder::tracing());
    let mut events = run.events;
    // Corrupt the digest of the *last* holder read — by then a put has
    // been acknowledged, so the true value is pinned and the checker
    // must notice the read cannot be any acceptable write. (The very
    // first read of a key is a free first observation.)
    let e = events
        .iter_mut()
        .rfind(|e| matches!(e.kind, EventKind::CritGet { .. }))
        .expect("trace has a criticalGet");
    if let EventKind::CritGet { digest, .. } = &mut e.kind {
        *digest = Some(digest.map_or(1, |d| d ^ 0xDEAD_BEEF));
    }
    let report = check(&events);
    assert!(!report.ok(), "corrupted read digest went unnoticed");
    assert!(
        report.violations.iter().any(|v| v.contains("latest-state")),
        "expected a latest-state violation, got {:?}",
        report.violations
    );
    // The streaming checker catches it too, with the identical verdict.
    assert_eq!(check_online(&events).ecf, report);
}

#[test]
fn overlapping_grant_is_flagged() {
    let run = run_chaos(LatencyProfile::one_us(), 7, Recorder::tracing());
    let mut events = run.events;
    // Inject a grant of a *different* reference right after an existing
    // grant, while that holder is still in its critical section.
    let idx = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::LockGrant { .. }))
        .expect("trace has a lockGrant");
    let mut forged = events[idx].clone();
    if let EventKind::LockGrant { lock_ref, .. } = &mut forged.kind {
        *lock_ref ^= 0xBAD;
    }
    forged.seq += 1;
    events.insert(idx + 1, forged);
    let report = check(&events);
    assert!(!report.ok(), "overlapping grant went unnoticed");
    assert!(
        report.violations.iter().any(|v| v.contains("exclusivity")),
        "expected an exclusivity violation, got {:?}",
        report.violations
    );
    // The streaming checker catches it too, with the identical verdict.
    assert_eq!(check_online(&events).ecf, report);
}
