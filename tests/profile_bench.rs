//! Replay determinism of the span profiler and the BENCH regression gate:
//! the same seed must reproduce the identical span tree, Chrome-trace
//! export, and `BENCH_*.json` bytes, and the gate must catch a
//! deliberately slowed mutant while passing an identical replay.

use music_bench::profile::{
    bench_json, compare_benches, run_mode_profile, ModeKey, ProfileOptions,
};
use music_repro::telemetry::span::{spans_to_json_lines, to_chrome_trace, SpanPhase};

#[test]
fn bench_json_replays_byte_identically() {
    let opts = ProfileOptions::quick(7);
    let run = |opts: &ProfileOptions| {
        let modes: Vec<_> = ModeKey::ALL
            .iter()
            .map(|&k| run_mode_profile(k, opts))
            .collect();
        bench_json("test", opts, &modes)
    };
    let a = run(&opts);
    let b = run(&opts);
    assert_eq!(a, b, "same seed must emit byte-identical BENCH artifacts");
    // A different seed still produces a valid artifact (parse + self-gate).
    let c = run(&ProfileOptions::quick(8));
    assert!(compare_benches(&c, &c, 0.0).unwrap().is_empty());
}

#[test]
fn span_tree_and_chrome_trace_replay_byte_identically() {
    let opts = ProfileOptions::quick(11);
    let a = run_mode_profile(ModeKey::Sync, &opts);
    let b = run_mode_profile(ModeKey::Sync, &opts);
    assert_eq!(
        spans_to_json_lines(&a.spans),
        spans_to_json_lines(&b.spans),
        "span tree must replay byte-identically"
    );
    assert_eq!(
        to_chrome_trace(&a.spans),
        to_chrome_trace(&b.spans),
        "Chrome-trace export must replay byte-identically"
    );
    assert!(a.span_report.ok(), "{}", a.span_report.to_json());
    assert!(!a.spans.is_empty());

    // Nesting is structural, not incidental: sections are roots, the lock
    // phases nest under the acquire span, and the headship confirm (opened
    // at the replica layer) rides the client's head-wait span.
    let phase_of = |id: u64| a.spans[id as usize - 1].phase;
    for s in &a.spans {
        match s.phase {
            SpanPhase::Section => assert_eq!(s.parent, 0, "cs spans are roots"),
            SpanPhase::LockAcquire => assert_eq!(phase_of(s.parent), SpanPhase::Section),
            SpanPhase::Enqueue | SpanPhase::HeadWait => {
                assert_eq!(phase_of(s.parent), SpanPhase::LockAcquire)
            }
            SpanPhase::HeadConfirm => assert_eq!(phase_of(s.parent), SpanPhase::HeadWait),
            SpanPhase::DataPut | SpanPhase::DataGet | SpanPhase::Release => {
                assert_eq!(phase_of(s.parent), SpanPhase::Section)
            }
            _ => {}
        }
    }
    let has = |p: SpanPhase| a.spans.iter().any(|s| s.phase == p);
    assert!(has(SpanPhase::Enqueue) && has(SpanPhase::HeadConfirm) && has(SpanPhase::Release));
}

#[test]
fn mode_specific_phases_appear() {
    let opts = ProfileOptions::quick(5);
    let piped = run_mode_profile(ModeKey::Pipelined, &opts);
    assert!(piped.span_report.ok(), "{}", piped.span_report.to_json());
    assert!(piped.spans.iter().any(|s| s.phase == SpanPhase::Flush));
    let leased = run_mode_profile(ModeKey::Leased, &opts);
    assert!(leased.span_report.ok(), "{}", leased.span_report.to_json());
    assert!(leased
        .spans
        .iter()
        .any(|s| s.phase == SpanPhase::LeaseReenter));
    assert!(leased
        .spans
        .iter()
        .any(|s| s.phase == SpanPhase::LeaseHandoff));
}

#[test]
fn gate_passes_identical_run_and_fails_slowed_mutant() {
    let opts = ProfileOptions::quick(7);
    let base = bench_json("gate", &opts, &[run_mode_profile(ModeKey::Sync, &opts)]);
    let again = bench_json("gate", &opts, &[run_mode_profile(ModeKey::Sync, &opts)]);
    assert!(
        compare_benches(&base, &again, 0.10).unwrap().is_empty(),
        "identical replay must pass the gate"
    );
    let slow = ProfileOptions {
        handicap_us: 5_000,
        ..opts.clone()
    };
    let mutant = bench_json("gate", &slow, &[run_mode_profile(ModeKey::Sync, &slow)]);
    let violations = compare_benches(&base, &mutant, 0.10).unwrap();
    assert!(
        !violations.is_empty(),
        "a 5ms-per-message mutant must trip the gate"
    );
}

#[test]
fn profile_counts_are_consistent() {
    let opts = ProfileOptions::quick(7);
    let m = run_mode_profile(ModeKey::Sync, &opts);
    let expected = (3 * opts.clients_per_site * opts.sections_per_client) as u64;
    assert_eq!(m.sections, expected, "every section must complete");
    let counter = |name: &str| {
        m.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap()
    };
    assert_eq!(counter("lock_grants"), expected);
    assert_eq!(counter("sections_entered"), expected);
    assert!(counter("quorum_writes") > 0);
    assert!(m.protocol_ops > 0);
    assert!(m.executor.events() > 0);
    assert!(m.virtual_us > 0);
    let cs = m.phases.iter().find(|(n, _)| *n == "cs").unwrap().1;
    assert_eq!(cs.count, expected);
    let entered: u64 = m.sites.iter().map(|s| s.entered).sum();
    assert_eq!(
        entered, expected,
        "per-site fairness rows cover every entry"
    );
}
