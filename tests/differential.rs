//! Differential lane: the streaming online checker versus the offline
//! replay checker, over every corpus the repo generates.
//!
//! The contract under test: with an unbounded window the online ECF core
//! is verdict-**identical** to [`check`] — same counters, same violation
//! strings — whether the events are replayed post-hoc or consumed live
//! through a recorder-attached checker. On top of that, the queue
//! refinement layer must stay clean on every legitimate corpus (no false
//! positives) while catching seeded lockstore anomalies the end-to-end
//! ECF predicate provably passes.

use music::nemesis::{run_nemesis, NemesisOptions, RunMode};
use music_repro::telemetry::{
    check, check_online, Event, EventKind, OnlineChecker, OnlineConfig, Recorder,
};
use music_repro::trace::run_chaos;
use music_simnet::prelude::*;

fn seeds() -> Vec<u64> {
    match std::env::var("MUSIC_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("MUSIC_SEEDS must be integers"))
            .collect(),
        Err(_) => vec![1, 2, 3, 5, 7, 11, 42, 1729],
    }
}

/// Replays `events` through a fresh unbounded checker and asserts full
/// verdict agreement with the offline checker, plus a clean queue layer.
fn assert_equivalent_and_queue_clean(events: &[Event], what: &str) {
    let offline = check(events);
    let online = check_online(events);
    assert_eq!(
        online.ecf, offline,
        "{what}: online ECF verdict diverged from offline"
    );
    assert!(
        online.queue_violations.is_empty(),
        "{what}: queue refinement false-positive: {:?}",
        online.queue_violations
    );
}

#[test]
fn chaos_seed_matrix_verdicts_agree() {
    // All 8 seeds of the matrix, through the full chaos scenario
    // (phases 1-7: clean sections, mid-put crash, watchdog preemption,
    // partition failover, pipelined batches, the lease lifecycle). The
    // checker is attached to the recorder, so the streaming verdict is
    // computed DURING the run; it must equal both the offline replay and
    // a post-hoc streaming replay of the recorded log.
    for seed in seeds() {
        let recorder = Recorder::tracing();
        recorder.attach_online(OnlineConfig::unbounded());
        let run = run_chaos(LatencyProfile::one_us(), seed, recorder.clone());
        assert!(run.report.ok(), "seed {seed}: chaos run not ECF-clean");

        let live = recorder.online_report().expect("checker attached");
        assert_eq!(
            live.ecf, run.report,
            "seed {seed}: live streaming verdict diverged from offline"
        );
        assert!(
            live.queue_violations.is_empty(),
            "seed {seed}: queue refinement false-positive: {:?}",
            live.queue_violations
        );
        assert!(live.queue_checked > 0, "seed {seed}: queue layer idle");

        // Streaming over the recorded log == the live streaming pass.
        let replayed = check_online(&run.events);
        assert_eq!(replayed, live, "seed {seed}: replay != live streaming");
    }
}

#[test]
fn nemesis_schedule_verdicts_agree() {
    // Randomized nemesis fault schedules across all three write modes —
    // the same (seed, salt, mode) derivation the seed-matrix sweep uses,
    // so CI shards cover all 216 schedules via MUSIC_SEEDS.
    for seed in seeds() {
        for salt in [0u64, 1] {
            let nemesis_seed = seed.wrapping_mul(2).wrapping_add(salt);
            let mode = RunMode::ALL[(nemesis_seed % 3) as usize];
            let run = run_nemesis(
                LatencyProfile::one_us(),
                nemesis_seed,
                NemesisOptions::new(mode),
                Recorder::tracing(),
            );
            assert_equivalent_and_queue_clean(
                &run.events,
                &format!("nemesis seed {nemesis_seed} mode {}", mode.name()),
            );
        }
    }
}

#[test]
fn every_offline_mutant_is_caught_online_with_the_identical_verdict() {
    // Every corruption tests/ecf_checker.rs proves the offline checker
    // catches must be caught by the online checker too — with the exact
    // same violations. Mutating the *verdict-relevant* dimensions:
    let base = run_chaos(LatencyProfile::one_us(), 7, Recorder::tracing()).events;
    assert!(check(&base).ok(), "baseline must be clean");

    let mut mutants: Vec<(String, Vec<Event>)> = Vec::new();

    // 1. Corrupted digest on the last holder read (latest-state).
    let mut m = base.clone();
    let e = m
        .iter_mut()
        .rfind(|e| matches!(e.kind, EventKind::CritGet { .. }))
        .expect("trace has a criticalGet");
    if let EventKind::CritGet { digest, .. } = &mut e.kind {
        *digest = Some(digest.map_or(1, |d| d ^ 0xDEAD_BEEF));
    }
    mutants.push(("corrupted read digest".into(), m));

    // 2. Forged overlapping grant (exclusivity).
    let mut m = base.clone();
    let idx = m
        .iter()
        .position(|e| matches!(e.kind, EventKind::LockGrant { .. }))
        .expect("trace has a lockGrant");
    let mut forged = m[idx].clone();
    if let EventKind::LockGrant { lock_ref, .. } = &mut forged.kind {
        *lock_ref ^= 0xBAD;
    }
    forged.seq += 1;
    m.insert(idx + 1, forged);
    mutants.push(("forged overlapping grant".into(), m));

    // 3. Read by a reference that does not hold the lock (exclusivity):
    //    retarget a holder read at a bogus reference.
    let mut m = base.clone();
    let e = m
        .iter_mut()
        .rfind(|e| matches!(e.kind, EventKind::CritGet { .. }))
        .expect("trace has a criticalGet");
    if let EventKind::CritGet { lock_ref, .. } = &mut e.kind {
        *lock_ref ^= 0xF00D;
    }
    mutants.push(("read by a non-holder".into(), m));

    // 4. Deleted release: drop a clean release whose key is granted
    //    again later, so the successor grant lands while the predecessor
    //    still holds (exclusivity).
    let mut m = base.clone();
    let idx = m
        .iter()
        .enumerate()
        .find_map(|(i, e)| match &e.kind {
            EventKind::LockRelease { key, lock_ref } => {
                let regranted = m.iter().any(|g| {
                    matches!(&g.kind, EventKind::LockGrant { key: k, lock_ref: r }
                             if k == key && r != lock_ref)
                        && g.seq > e.seq
                });
                regranted.then_some(i)
            }
            _ => None,
        })
        .expect("trace has a release followed by a re-grant of its key");
    m.remove(idx);
    mutants.push(("deleted release".into(), m));

    // 5. Broken sequence order: swap two adjacent seq numbers.
    let mut m = base.clone();
    let (s0, s1) = (m[10].seq, m[11].seq);
    m[10].seq = s1;
    m[11].seq = s0;
    mutants.push(("seq order broken".into(), m));

    for (what, events) in &mutants {
        let offline = check(events);
        assert!(!offline.ok(), "{what}: offline checker missed the mutant");
        let online = check_online(events);
        assert!(!online.ecf.ok(), "{what}: online checker missed the mutant");
        assert_eq!(
            online.ecf, offline,
            "{what}: online verdict differs from offline"
        );
    }
}

#[test]
fn queue_refinement_catches_what_ecf_passes() {
    // Seeded lockstore anomalies injected into a REAL chaos trace. Each
    // mutant must pass the offline end-to-end ECF check (that is the
    // point: later synchronization masks the internal anomaly) while the
    // queue refinement layer flags it.
    let base = run_chaos(LatencyProfile::one_us(), 7, Recorder::tracing()).events;
    let last = base.last().expect("non-empty trace");
    let next = |e: &Event, seq_off: u64| (last.seq + seq_off, e.at_us.max(last.at_us) + seq_off);

    // Mutant A — resurrection grant: re-grant a reference that was
    // cleanly released (offline: a zombie-free lock is simply re-held;
    // since the queue is empty the grant looks fine end-to-end... but it
    // IS fine for ECF only because the key is idle).
    let released = base
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::LockRelease { key, lock_ref } => Some((key.clone(), *lock_ref)),
            _ => None,
        })
        .next_back()
        .expect("trace has a clean release");
    let mut m = base.clone();
    let (seq, at_us) = next(last, 1);
    m.push(Event {
        seq,
        at_us,
        trace: 0,
        node: 0,
        kind: EventKind::LockGrant {
            key: released.0.clone(),
            lock_ref: released.1,
        },
    });
    let offline = check(&m);
    assert!(
        offline.ok(),
        "mutant A must pass offline ECF: {:?}",
        offline.violations
    );
    let online = check_online(&m);
    assert!(online.ecf.ok());
    assert!(
        online
            .queue_violations
            .iter()
            .any(|v| v.contains("cleanly released reference")),
        "mutant A not flagged: {:?}",
        online.queue_violations
    );

    // Mutant B — double grant after forcedRelease: a reference that was
    // granted and then collected by the failure detector gets granted
    // AGAIN once the lock is free. The offline checker excuses it as a
    // zombie grant (ok() stays true); the queue model knows better.
    let collected = base
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::LockForcedRelease { key, lock_ref } => Some((e.seq, key.clone(), *lock_ref)),
            _ => None,
        })
        .find(|(fseq, key, r)| {
            // Must have been effectively granted before the collection,
            // and its key must be idle at the end of the trace.
            let granted_before = base.iter().any(|e| {
                matches!(&e.kind, EventKind::LockGrant { key: k, lock_ref: g }
                         if k == key && g == r)
                    && e.seq < *fseq
            });
            let held_after = base.iter().any(|e| {
                matches!(&e.kind, EventKind::LockGrant { key: k, .. } if k == key)
                    && e.seq > *fseq
                    && !base.iter().any(|r2| {
                        matches!(&r2.kind,
                            EventKind::LockRelease { key: k2, .. }
                            | EventKind::LockForcedRelease { key: k2, .. } if k2 == key)
                            && r2.seq > e.seq
                    })
            });
            granted_before && !held_after
        });
    if let Some((_, key, r)) = collected {
        let mut m = base.clone();
        let (seq, at_us) = next(last, 2);
        m.push(Event {
            seq,
            at_us,
            trace: 0,
            node: 0,
            kind: EventKind::LockGrant { key, lock_ref: r },
        });
        let offline = check(&m);
        assert!(
            offline.ok(),
            "mutant B must pass offline ECF (zombie excuse): {:?}",
            offline.violations
        );
        assert!(offline.zombie_grants > check(&base).zombie_grants);
        let online = check_online(&m);
        assert!(online.ecf.ok());
        assert!(
            online
                .queue_violations
                .iter()
                .any(|v| v.contains("re-grant of collected reference")),
            "mutant B not flagged: {:?}",
            online.queue_violations
        );
    } else {
        // The fixed seed-7 trace has watchdog preemptions of granted
        // holders; if the shape ever changes, fall back to a synthetic
        // tail on a fresh key so the mutant is still exercised.
        let mk = |seq_off: u64, kind: EventKind| {
            let (seq, at_us) = next(last, seq_off);
            Event {
                seq,
                at_us,
                trace: 0,
                node: 0,
                kind,
            }
        };
        let key = "queue-mutant-b".to_string();
        let mut m = base.clone();
        for (i, kind) in [
            EventKind::LockEnqueue {
                key: key.clone(),
                lock_ref: 1,
            },
            EventKind::LockGrant {
                key: key.clone(),
                lock_ref: 1,
            },
            EventKind::LockForcedRelease {
                key: key.clone(),
                lock_ref: 1,
            },
            EventKind::LockGrant {
                key: key.clone(),
                lock_ref: 1,
            },
        ]
        .into_iter()
        .enumerate()
        {
            m.push(mk(i as u64 + 2, kind));
        }
        let offline = check(&m);
        assert!(offline.ok(), "{:?}", offline.violations);
        let online = check_online(&m);
        assert!(
            online
                .queue_violations
                .iter()
                .any(|v| v.contains("re-grant of collected reference")),
            "mutant B (synthetic) not flagged: {:?}",
            online.queue_violations
        );
    }

    // Mutant C — out-of-order grant: three references minted, granted
    // 1, 3, 2. Every grant lands on an idle lock, so end-to-end ECF is
    // blind to the FIFO break.
    let mk = |seq_off: u64, kind: EventKind| {
        let (seq, at_us) = next(last, seq_off);
        Event {
            seq,
            at_us,
            trace: 0,
            node: 0,
            kind,
        }
    };
    let key = "queue-mutant-c".to_string();
    let enqueue = |r: u64| EventKind::LockEnqueue {
        key: key.clone(),
        lock_ref: r,
    };
    let grant = |r: u64| EventKind::LockGrant {
        key: key.clone(),
        lock_ref: r,
    };
    let release = |r: u64| EventKind::LockRelease {
        key: key.clone(),
        lock_ref: r,
    };
    let mut m = base.clone();
    for (i, kind) in [
        enqueue(1),
        enqueue(2),
        enqueue(3),
        grant(1),
        release(1),
        grant(3),
        release(3),
        grant(2),
        release(2),
    ]
    .into_iter()
    .enumerate()
    {
        m.push(mk(i as u64 + 10, kind));
    }
    let offline = check(&m);
    assert!(offline.ok(), "mutant C must pass offline ECF");
    let online = check_online(&m);
    assert!(online.ecf.ok());
    assert!(
        online
            .queue_violations
            .iter()
            .any(|v| v.contains("out-of-order grant")),
        "mutant C not flagged: {:?}",
        online.queue_violations
    );
}

#[test]
fn memory_stays_bounded_over_100k_distinct_keys() {
    // 120k distinct keys stream through a windowed checker; only a small
    // rolling set is ever simultaneously active, and the checker's state
    // must track the LIVE set, not the event count. Synthetic events
    // (this is a memory-shape test, not a protocol test): each key runs
    // one enqueue/grant/put/get/release section, keys overlap in a
    // sliding window of 64.
    const KEYS: u64 = 120_000;
    const OVERLAP: u64 = 64;
    let mut c = OnlineChecker::new(OnlineConfig::windowed(10_000));
    let mut seq = 0u64;
    let mut push = |c: &mut OnlineChecker, key: &str, kind: EventKind| {
        let e = Event {
            seq,
            at_us: seq, // virtual clock advances with the stream
            trace: 0,
            node: 0,
            kind,
        };
        let _ = key;
        seq += 1;
        c.push(&e);
    };
    let mut peak_live_seen = 0usize;
    for k in 0..KEYS {
        let key = format!("bound-{k}");
        let d = music_repro::telemetry::digest(key.as_bytes());
        push(
            &mut c,
            &key,
            EventKind::LockEnqueue {
                key: key.clone(),
                lock_ref: 1,
            },
        );
        push(
            &mut c,
            &key,
            EventKind::LockGrant {
                key: key.clone(),
                lock_ref: 1,
            },
        );
        push(
            &mut c,
            &key,
            EventKind::CritPutAck {
                key: key.clone(),
                lock_ref: 1,
                digest: d,
            },
        );
        push(
            &mut c,
            &key,
            EventKind::CritGet {
                key: key.clone(),
                lock_ref: 1,
                digest: Some(d),
            },
        );
        // Release lags by OVERLAP keys: a sliding window of open sections.
        if k >= OVERLAP {
            let old = format!("bound-{}", k - OVERLAP);
            push(
                &mut c,
                &old,
                EventKind::LockRelease {
                    key: old.clone(),
                    lock_ref: 1,
                },
            );
        }
        peak_live_seen = peak_live_seen.max(c.live_keys());
    }
    for k in (KEYS - OVERLAP)..KEYS {
        let key = format!("bound-{k}");
        push(
            &mut c,
            &key,
            EventKind::LockRelease {
                key: key.clone(),
                lock_ref: 1,
            },
        );
    }
    let r = c.report();
    assert!(r.ok(), "{:?} {:?}", r.ecf.violations, r.queue_violations);
    assert_eq!(r.events_seen, KEYS * 5);
    assert!(r.keys_retired > KEYS / 2, "window never retired state");
    // The bound: live state is O(open sections + retirement window), not
    // O(distinct keys) and not O(events). The sweep cadence (1024
    // events) times the section width bounds how much quiescent state
    // can linger between sweeps.
    let bound = 8_192;
    assert!(
        peak_live_seen < bound,
        "peak live {peak_live_seen} for {KEYS} keys — state is not O(live keys)"
    );
    assert!(c.live_keys() < bound);
}
