//! Nemesis fault-schedule engine integration: randomized timelines of
//! crashes, rolling restarts, site and asymmetric link partitions, loss
//! bursts, and gray failures run against randomized multi-client
//! critical-section workloads. Every schedule must come out ECF-clean
//! (under the deposed-reference semantics: zombie grants and stale reads
//! are *counted*, genuine overlaps are violations) and must replay
//! byte-identically — the property the whole diagnosis workflow rests on.
//!
//! `MUSIC_NEMESIS_SEEDS="4,5,6"` shards the seed set across CI runners.

use music::nemesis::{run_nemesis, NemesisOptions, RunMode};
use music_repro::telemetry::{to_json_lines, EventKind, Recorder};
use music_simnet::prelude::*;

fn seeds() -> Vec<u64> {
    match std::env::var("MUSIC_NEMESIS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("MUSIC_NEMESIS_SEEDS must be integers")
            })
            .collect(),
        Err(_) => vec![1, 2, 3, 4, 5, 6],
    }
}

/// Every (profile × seed) pair is ECF-clean, in the write mode the seed
/// selects — so the default seed set covers all three modes on all three
/// Table II topologies.
#[test]
fn every_schedule_is_ecf_clean_on_every_profile() {
    for profile in LatencyProfile::table_ii() {
        for seed in seeds() {
            let mode = RunMode::ALL[(seed % 3) as usize];
            let run = run_nemesis(
                profile.clone(),
                seed,
                NemesisOptions::new(mode),
                Recorder::tracing(),
            );
            assert!(
                run.report.ok(),
                "profile {} seed {seed} mode {} violated ECF: {}",
                profile.name(),
                mode.name(),
                run.report.to_json()
            );
            // The schedule must actually have done something: faults were
            // injected, sections ran, and the checker saw real traffic.
            assert!(
                !run.schedule.is_empty(),
                "profile {} seed {seed}: empty fault schedule",
                profile.name()
            );
            assert!(
                run.sections_ok >= 1,
                "profile {} seed {seed}: no section ever completed",
                profile.name()
            );
            assert!(
                run.report.grants >= 1,
                "profile {} seed {seed}: no grants checked",
                profile.name()
            );
            let injects = run
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::FaultInject { .. }))
                .count();
            let heals = run
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::FaultHeal { .. }))
                .count();
            assert!(
                injects >= run.schedule.len(),
                "profile {} seed {seed}: {injects} faultInject events for {} scheduled faults",
                profile.name(),
                run.schedule.len()
            );
            assert!(
                heals >= 1,
                "profile {} seed {seed}: no fault ever healed",
                profile.name()
            );
        }
    }
}

/// Re-running a schedule reproduces the identical event log and metrics,
/// in every write mode — byte-for-byte.
#[test]
fn every_mode_replays_byte_identically() {
    for mode in RunMode::ALL {
        let a = run_nemesis(
            LatencyProfile::one_us(),
            7,
            NemesisOptions::new(mode),
            Recorder::tracing(),
        );
        let b = run_nemesis(
            LatencyProfile::one_us(),
            7,
            NemesisOptions::new(mode),
            Recorder::tracing(),
        );
        assert_eq!(
            to_json_lines(&a.events),
            to_json_lines(&b.events),
            "mode {}: event log diverged on replay",
            mode.name()
        );
        assert_eq!(
            a.metrics.to_json(),
            b.metrics.to_json(),
            "mode {}: metrics diverged on replay",
            mode.name()
        );
        assert_eq!(a.final_time_us, b.final_time_us);
    }
}

/// The flash-crowd lane: every client's middle sections converge on one
/// hot key while the contention-adaptive controller runs, composed with
/// the usual crash/partition lanes and the clock-drift lane. Each
/// schedule must stay ECF-clean, the streaming verdict must equal the
/// offline replay with a clean queue-refinement layer, and the run must
/// replay byte-identically.
#[test]
fn flash_crowd_lane_is_ecf_clean_online_and_offline() {
    let mut switches = 0u64;
    for seed in seeds() {
        let mode = RunMode::ALL[(seed % 3) as usize];
        let mut opts = NemesisOptions::new(mode).with_flash_crowd().with_drift(
            SimDuration::from_micros(2_000),
            SimDuration::from_micros(2_000),
        );
        opts.sections_per_client = 8;
        let run = run_nemesis(
            LatencyProfile::one_us(),
            seed,
            opts.clone(),
            Recorder::tracing(),
        );
        assert!(
            run.report.ok(),
            "flash-crowd seed {seed} mode {} violated ECF: {}",
            mode.name(),
            run.report.to_json()
        );
        let online = run.online.as_ref().expect("tracing recorder attaches it");
        assert_eq!(
            online.ecf, run.report,
            "flash-crowd seed {seed}: online verdict diverged from offline"
        );
        assert!(
            online.queue_violations.is_empty(),
            "flash-crowd seed {seed}: queue refinement flagged {:?}",
            online.queue_violations
        );
        assert!(
            run.sections_ok >= 1,
            "flash-crowd seed {seed}: no section ever completed"
        );
        // The lane is standing: the schedule advertises it.
        assert!(
            run.schedule.iter().any(|l| l.contains("flashCrowd")),
            "flash-crowd lane missing from the schedule: {:?}",
            run.schedule
        );
        switches += run.metrics.total("strategy_switches");
        // Byte-identical replay, controller state and all.
        let again = run_nemesis(LatencyProfile::one_us(), seed, opts, Recorder::tracing());
        assert_eq!(
            to_json_lines(&run.events),
            to_json_lines(&again.events),
            "flash-crowd seed {seed}: event log diverged on replay"
        );
        assert_eq!(run.metrics.to_json(), again.metrics.to_json());
    }
    // Across the sweep the controller must actually have adapted — the
    // crowd drives grant waits over the hot threshold somewhere.
    assert!(
        switches >= 1,
        "no schedule ever drove the controller into Hot mode"
    );
}

/// The deposed-reference accounting surfaces in the report: across a
/// modest sweep, at least one schedule exercises a forced release, and
/// excusable zombie grants / stale reads are counted — never flagged.
#[test]
fn forced_releases_and_deposed_accounting_are_exercised() {
    let mut forced = 0u64;
    let mut excused = 0u64;
    for seed in 1..=12u64 {
        let mode = RunMode::ALL[(seed % 3) as usize];
        let run = run_nemesis(
            LatencyProfile::one_us(),
            seed,
            NemesisOptions::new(mode),
            Recorder::tracing(),
        );
        assert!(run.report.ok(), "seed {seed}: {}", run.report.to_json());
        forced += run.report.forced_releases;
        excused += run.report.zombie_grants + run.report.stale_reads + run.report.stale_put_acks;
    }
    assert!(forced >= 1, "no schedule ever forced a release");
    assert!(
        excused >= 1,
        "no schedule exercised the deposed-reference (§IV-B false-detection) races"
    );
}
