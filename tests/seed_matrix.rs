//! Seed-matrix chaos sweep: the full chaos scenario — crashes, partitions,
//! watchdog preemptions, lease grants, a lease break, and a lease
//! revocation — must come out ECF-clean under *every* randomized schedule,
//! not just the default seed. Each seed draws different loss, jitter, and
//! back-off schedules, so this sweeps genuinely distinct interleavings.
//!
//! `MUSIC_SEEDS="3,17"` (comma-separated) overrides the built-in matrix;
//! the CI seed-matrix job uses it to shard seeds across runners.

use music::nemesis::{run_nemesis, NemesisOptions, RunMode};
use music_repro::telemetry::{to_json_lines, Recorder};
use music_repro::trace::run_chaos;
use music_simnet::prelude::*;

fn seeds() -> Vec<u64> {
    match std::env::var("MUSIC_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("MUSIC_SEEDS must be integers"))
            .collect(),
        // Default matrix: 8 seeds, chosen to include the ones other tests
        // and the CLI default use (1, 7, 42) plus arbitrary fresh draws.
        Err(_) => vec![1, 2, 3, 5, 7, 11, 42, 1729],
    }
}

#[test]
fn every_seed_is_ecf_clean() {
    for seed in seeds() {
        let run = run_chaos(LatencyProfile::one_us(), seed, Recorder::tracing());
        assert!(
            run.report.ok(),
            "seed {seed} violated ECF: {}",
            run.report.to_json()
        );
        // The interesting machinery must actually have fired under every
        // schedule — a trivially-empty run would vacuously pass.
        assert!(run.report.grants >= 10, "seed {seed}: too few lock grants");
        assert!(
            run.metrics.total("lease_grants") >= 1,
            "seed {seed}: lease fast path never granted"
        );
        assert!(
            run.metrics.total("lease_breaks") >= 1,
            "seed {seed}: competing enqueue never broke a lease"
        );
        assert!(
            run.metrics.total("watchdog_lease_revocations") >= 1,
            "seed {seed}: watchdog never revoked the abandoned lease"
        );
        assert!(
            run.metrics.total("watchdog_preemptions") >= 2,
            "seed {seed}: watchdog never preempted a dead holder"
        );
        // Core protocol counters must be live under every schedule: a
        // zeroed counter here means the scenario silently stopped
        // exercising that path (the profiler's BENCH artifacts build on
        // these same totals).
        for counter in ["lock_grants", "quorum_writes", "quorum_reads", "cs_flushes"] {
            assert!(
                run.metrics.total(counter) > 0,
                "seed {seed}: counter {counter} never fired"
            );
        }
        // And the span layer must have both produced and closed a tree.
        assert!(
            run.span_report.ok(),
            "seed {seed}: malformed span tree: {}",
            run.span_report.to_json()
        );
        assert!(run.spans.len() >= 20, "seed {seed}: too few spans");
    }
}

#[test]
fn every_seed_survives_nemesis_schedules() {
    // Beyond the fixed chaos scenario: two *randomized* nemesis fault
    // schedules per seed (distinct write modes), each of which must come
    // out ECF-clean. Sharded by the same MUSIC_SEEDS variable as above.
    for seed in seeds() {
        for salt in [0u64, 1] {
            let nemesis_seed = seed.wrapping_mul(2).wrapping_add(salt);
            let mode = RunMode::ALL[(nemesis_seed % 3) as usize];
            let run = run_nemesis(
                LatencyProfile::one_us(),
                nemesis_seed,
                NemesisOptions::new(mode),
                Recorder::tracing(),
            );
            assert!(
                run.report.ok(),
                "seed {seed} (nemesis seed {nemesis_seed}, mode {}) violated ECF: {}",
                mode.name(),
                run.report.to_json()
            );
            assert!(
                run.sections_ok >= 1,
                "seed {seed}: nemesis workload made no progress"
            );
        }
    }
}

#[test]
fn each_seed_replays_byte_identically() {
    // Re-running any seed must reproduce the identical trace — the
    // determinism claim the whole matrix rests on. One seed suffices
    // here; telemetry_determinism.rs covers the recorder modes.
    let seed = *seeds().last().expect("at least one seed");
    let a = run_chaos(LatencyProfile::one_us(), seed, Recorder::tracing());
    let b = run_chaos(LatencyProfile::one_us(), seed, Recorder::tracing());
    assert_eq!(to_json_lines(&a.events), to_json_lines(&b.events));
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
}
