//! Cross-crate integration tests: the whole stack (simnet → quorumstore →
//! lockstore → music) under realistic fault scenarios, plus baseline
//! cross-checks.

use bytes::Bytes;
use music_repro::music::{AcquireOutcome, MusicConfig, MusicSystemBuilder, Watchdog};
use music_repro::simnet::prelude::*;

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

/// A long chaos run: clients keep running critical sections on a handful
/// of keys while the network drops messages and sites flap; at the end,
/// every key's value history must be consistent (each counter increment
/// applied exactly once — increments are made idempotent via tags).
#[test]
fn chaos_critical_sections_preserve_history() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(NetConfig {
            service_fixed: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: 1_000_000_000,
            loss: 0.01,
            jitter_frac: 0.1,
        })
        .music_config(MusicConfig {
            failure_timeout: SimDuration::from_secs(5),
            client_retries: 32,
            ..MusicConfig::default()
        })
        .seed(1234)
        .build();
    let sim = sys.sim().clone();

    // Watchdogs on every key (crashed holders must not wedge the run).
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_secs(2));
    for k in 0..2 {
        dog.watch(&format!("chaos-{k}"));
    }
    dog.spawn();

    let done = std::rc::Rc::new(std::cell::Cell::new(0u32));
    let total_workers = 6u32;
    for w in 0..total_workers {
        let client = sys.client_at_site((w % 3) as usize);
        let key = format!("chaos-{}", w % 2);
        let tag = format!("w{w}");
        let done = std::rc::Rc::clone(&done);
        let sim2 = sim.clone();
        sim.spawn(async move {
            let trace = std::env::var("MUSIC_CHAOS_TRACE").is_ok();
            // Append our tag exactly once, retrying whole critical
            // sections on failure.
            loop {
                if trace {
                    eprintln!("[chaos] t={} {tag} entering {key}", sim2.now());
                }
                let Ok(cs) = client.enter(&key).await else {
                    if trace {
                        eprintln!("[chaos] t={} {tag} enter failed", sim2.now());
                    }
                    sim2.sleep(SimDuration::from_millis(50)).await;
                    continue;
                };
                let cur = match cs.get().await {
                    Ok(v) => v,
                    Err(e) => {
                        if trace {
                            eprintln!("[chaos] t={} {tag} get failed: {e}", sim2.now());
                        }
                        let _ = cs.release().await;
                        continue;
                    }
                };
                let text = cur
                    .map(|v| String::from_utf8(v.to_vec()).unwrap())
                    .unwrap_or_default();
                if !text.split(',').any(|t| t == tag) {
                    let next = if text.is_empty() {
                        tag.clone()
                    } else {
                        format!("{text},{tag}")
                    };
                    if let Err(e) = cs.put(Bytes::from(next.into_bytes())).await {
                        if trace {
                            eprintln!("[chaos] t={} {tag} put failed: {e}", sim2.now());
                        }
                        let _ = cs.release().await;
                        continue;
                    }
                }
                match cs.release().await {
                    Ok(()) => {
                        done.set(done.get() + 1);
                        break;
                    }
                    Err(e) => {
                        if trace {
                            eprintln!("[chaos] t={} {tag} release failed: {e}", sim2.now());
                        }
                    }
                }
            }
        });
    }

    // Flap site 2 a few times while the workers run.
    {
        let net = sys.net().clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            for _ in 0..3 {
                sim2.sleep(SimDuration::from_secs(3)).await;
                net.partition_site(SiteId(2), true);
                sim2.sleep(SimDuration::from_secs(2)).await;
                net.partition_site(SiteId(2), false);
            }
        });
    }

    // Generous horizon: orphan collection under loss + flapping partitions
    // serializes recoveries.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(600));
    dog.stop();
    assert_eq!(done.get(), total_workers, "all workers finished");

    // Verify: each key's chain holds each of its workers exactly once.
    let sys2 = sys.clone();
    let chains = sim.block_on(async move {
        let replica = sys2.replica(0).clone();
        let mut out = Vec::new();
        for k in 0..2 {
            let key = format!("chaos-{k}");
            let cs_ref = replica.create_lock_ref(&key).await.unwrap();
            loop {
                match replica.acquire_lock(&key, cs_ref).await {
                    Ok(AcquireOutcome::Acquired) => break,
                    _ => sys2.sim().sleep(SimDuration::from_millis(10)).await,
                }
            }
            let v = replica.critical_get(&key, cs_ref).await.unwrap().unwrap();
            replica.release_lock(&key, cs_ref).await.unwrap();
            out.push(String::from_utf8(v.to_vec()).unwrap());
        }
        out
    });
    for (k, chain) in chains.iter().enumerate() {
        let mut tags: Vec<&str> = chain.split(',').collect();
        tags.sort_unstable();
        let before = tags.len();
        tags.dedup();
        assert_eq!(tags.len(), before, "key {k}: duplicate tags in {chain}");
        assert_eq!(tags.len(), 3, "key {k}: expected 3 workers in {chain}");
    }
}

/// The facade re-exports compose: run a mini experiment touching every
/// crate through `music_repro`.
#[test]
fn facade_smoke_all_crates() {
    use music_repro::{cdb, lockstore, modelcheck, paxos, quorumstore, workload, zab};

    // paxos
    let mut acc: paxos::Acceptor<u8> = paxos::Acceptor::new();
    let ballot = paxos::Ballot::new(1, 0);
    assert!(acc.prepare(ballot).promised);

    // workload
    let zipf = workload::Zipfian::new(10);
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    use rand::RngCore;
    let _ = rng.next_u64();
    let _ = zipf;

    // modelcheck (tiny scope for speed)
    let model = modelcheck::MusicModel::new(modelcheck::Scope {
        clients: 1,
        max_puts: 1,
        max_crashes: 1,
        max_forced: 1,
        stale_puts: true,
        pipeline_window: 0,
        lease: false,
        max_leases: 0,
        drift: false,
        combine: false,
        adaptive_window: false,
    });
    let out = modelcheck::Checker::default().run(&model);
    assert!(out.is_ok());

    // simnet + quorumstore + lockstore + zab + cdb all share one sim.
    let sim = Sim::new();
    let net = Network::new(
        sim.clone(),
        LatencyProfile::one_l(),
        NetConfig::default(),
        1,
    );
    let store_nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let zk_nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let cdb_nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let client = net.add_node(SiteId(0));

    let table: quorumstore::ReplicatedTable<quorumstore::DataRow> =
        quorumstore::ReplicatedTable::new(
            net.clone(),
            store_nodes.clone(),
            3,
            quorumstore::TableConfig::default(),
        );
    let locks = lockstore::LockStore::new(
        net.clone(),
        store_nodes,
        3,
        quorumstore::TableConfig::default(),
    );
    let zk = zab::ZkEnsemble::new(net.clone(), zk_nodes);
    let cdb = cdb::CdbCluster::new(net, cdb_nodes);

    sim.block_on(async move {
        table
            .write_quorum(
                client,
                "k",
                quorumstore::Put::value(b("v")),
                quorumstore::WriteStamp::new(1),
            )
            .await
            .unwrap();
        let r = locks.generate_and_enqueue(client, "k").await.unwrap();
        locks.dequeue(client, "k", r).await.unwrap();

        let s = zk.connect(client);
        s.create("/x", b("z"), zab::CreateMode::Persistent)
            .await
            .unwrap();

        let session = cdb.session(client);
        let mut t = session.transaction();
        t.upsert("row", b("1")).await.unwrap();
        t.commit().await.unwrap();
    });
}

/// Latency-structure regression across the whole stack: a full critical
/// section (1 put) on 1Us lands in the window the paper's Fig. 5(b)
/// breakdown implies (2 LWTs + grant + put ≈ 0.5-0.6 s).
#[test]
fn full_critical_section_latency_structure() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(NetConfig {
            service_fixed: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX / 2,
            loss: 0.0,
            jitter_frac: 0.0,
        })
        .seed(6)
        .build();
    let sim = sys.sim().clone();
    let client = sys.client_at_site(0);
    let elapsed = sim.block_on({
        let sim = sys.sim().clone();
        async move {
            let t0 = sim.now();
            let cs = client.enter("k").await.unwrap();
            cs.put(b("v")).await.unwrap();
            cs.release().await.unwrap();
            sim.now() - t0
        }
    });
    let ms = elapsed.as_millis_f64();
    // createLockRef ~215 + grant ~54 + put ~54 + release ~215 ≈ 538.
    assert!((500.0..650.0).contains(&ms), "CS took {ms} ms");
}
