//! Quickstart: Listing 1 of the paper — a critical section over a
//! geo-distributed key, executed on a simulated 3-site WAN deployment.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use music::{MusicError, MusicSystemBuilder, WriteMode};
use music_simnet::prelude::*;

fn main() -> Result<(), MusicError> {
    // A 3-site deployment on the paper's cross-region `1Us` profile
    // (Ohio / N. California / Oregon, Table II).
    let system = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .seed(42)
        .build();
    let sim = system.sim().clone();
    let client = system.client_at_site(0);
    let stats = system.stats().clone();

    sim.block_on(async move {
        println!("== Listing 1: increment a counter inside a critical section ==");
        for round in 1..=3u64 {
            // createLockRef + acquireLock (polling until first in queue).
            let cs = client.enter("counter").await?;
            // criticalGet is guaranteed to return the true value.
            let v1 = cs.get().await?;
            let current = v1.map_or(0, |b| u64::from_be_bytes(b.as_ref().try_into().unwrap()));
            let next = current + 1;
            // criticalPut makes `next` the new true value.
            cs.put(Bytes::copy_from_slice(&next.to_be_bytes())).await?;
            cs.release().await?;
            println!(
                "  round {round}: read {current}, wrote {next} (virtual time {})",
                client.primary().data().net().sim().now()
            );
        }
        Ok::<(), MusicError>(())
    })?;

    // Beyond the paper: pipelined critical puts. Inside a held section,
    // `put` queues the quorum write and returns once the in-flight window
    // (here 8) has room; `release` is a flush barrier that awaits every
    // outstanding ack before giving up the lock, so ECF still holds.
    let piped = system
        .client_at_site(1)
        .with_write_mode(WriteMode::Pipelined { window: 8 });
    sim.block_on(async move {
        println!();
        println!("== Pipelined writes: 8 puts, one flush at release ==");
        let clock = piped.primary().data().net().sim().clone();
        let started = clock.now();
        let cs = piped.enter("journal").await?;
        for n in 0..8u64 {
            cs.put(Bytes::copy_from_slice(&n.to_be_bytes())).await?;
        }
        println!("  {} puts in flight before the flush", cs.in_flight());
        cs.release().await?; // flush barrier: all 8 are quorum-durable now
        println!(
            "  section took {} (vs ~8 sequential quorum round-trips in Sync mode)",
            clock.now() - started
        );
        Ok::<(), MusicError>(())
    })?;

    println!();
    println!("== Per-operation mean latency (1Us profile) ==");
    for kind in music::OpKind::ALL {
        let h = stats.histogram(kind);
        if !h.is_empty() {
            println!(
                "  {kind:<20} {:>9.2} ms x{}",
                h.mean().as_millis_f64(),
                h.count()
            );
        }
    }
    Ok(())
}
