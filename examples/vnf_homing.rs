//! The VNF Homing service of §VII-a: a multi-site job scheduler where
//! worker replicas vie for homing jobs through MUSIC locks, execute them
//! from their latest state, and survive worker failures without losing or
//! duplicating work.
//!
//! A homing job walks the execution states of Fig. 3(b); a worker updates
//! the job's state in MUSIC with `criticalPut` after each step, so when a
//! worker dies mid-job, the next worker resumes exactly where it left off.
//!
//! ```text
//! cargo run --example vnf_homing
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use music::{AcquireOutcome, MusicConfig, MusicReplica, MusicSystemBuilder, Watchdog};
use music_simnet::prelude::*;

/// The homing pipeline of Fig. 3(b).
const STATES: [&str; 5] = ["PENDING", "TEMPLATE", "TRANSLATED", "SOLVING", "DONE"];

fn next_state(cur: &str) -> Option<&'static str> {
    let idx = STATES.iter().position(|s| *s == cur)?;
    STATES.get(idx + 1).copied()
}

fn job_value(state: &str, desc: &str) -> Bytes {
    Bytes::from(format!("{state}|{desc}").into_bytes())
}

fn parse_job(v: &Bytes) -> (String, String) {
    let s = String::from_utf8(v.to_vec()).expect("utf8 job state");
    let (state, desc) = s.split_once('|').expect("state|description");
    (state.to_string(), desc.to_string())
}

/// One worker: scan all jobs, try to lock an incomplete one, and progress
/// it state by state (the `executeJobInCriticalSection` pseudo-code).
async fn worker(
    name: &'static str,
    replica: MusicReplica,
    sim: Sim,
    die_at_state: Option<&'static str>,
    log: Rc<RefCell<Vec<String>>>,
) {
    loop {
        let Ok(jobs) = replica.get_all_keys().await else {
            sim.sleep(SimDuration::from_millis(50)).await;
            continue;
        };
        let mut claimed_any = false;
        for job_id in jobs {
            // Lock-free peek at the job state; staleness is harmless here.
            let Ok(Some(v)) = replica.get(&job_id).await else {
                continue;
            };
            let (state, desc) = parse_job(&v);
            if state == "DONE" {
                continue;
            }
            // Vie for the job.
            let Ok(lock_ref) = replica.create_lock_ref(&job_id).await else {
                continue;
            };
            let granted = loop {
                match replica.acquire_lock(&job_id, lock_ref).await {
                    Ok(AcquireOutcome::Acquired) => break true,
                    Ok(AcquireOutcome::NoLongerHolder) => break false,
                    Ok(AcquireOutcome::NotYet) => {
                        // Another worker is on it: evict our reference for
                        // timely garbage collection (removeLockReference).
                        let _ = replica.release_lock(&job_id, lock_ref).await;
                        break false;
                    }
                    Err(_) => sim.sleep(SimDuration::from_millis(5)).await,
                }
            };
            if !granted {
                continue;
            }
            claimed_any = true;
            let _ = desc;
            // executeJobInCriticalSection: progress from the *latest* state.
            let Ok(Some(v)) = replica.critical_get(&job_id, lock_ref).await else {
                let _ = replica.release_lock(&job_id, lock_ref).await;
                continue;
            };
            let (mut state, desc) = parse_job(&v);
            log.borrow_mut()
                .push(format!("{name} picked {job_id} at {state}"));
            while let Some(next) = next_state(&state) {
                // "Execute" the step (optimization work takes time).
                sim.sleep(SimDuration::from_millis(400)).await;
                if die_at_state == Some(next) {
                    log.borrow_mut()
                        .push(format!("{name} CRASHED before {job_id} -> {next}"));
                    return; // worker dies holding the lock
                }
                if replica
                    .critical_put(&job_id, lock_ref, job_value(next, &desc))
                    .await
                    .is_err()
                {
                    // Preempted or store trouble: abandon; someone else
                    // resumes from the last acknowledged state.
                    log.borrow_mut()
                        .push(format!("{name} lost {job_id} at {state}"));
                    break;
                }
                state = next.to_string();
                log.borrow_mut()
                    .push(format!("{name} moved {job_id} -> {state}"));
            }
            let _ = replica.release_lock(&job_id, lock_ref).await;
        }
        if !claimed_any {
            sim.sleep(SimDuration::from_millis(200)).await;
        }
    }
}

fn main() {
    let system = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .music_config(MusicConfig {
            // Aggressive failure detection so the demo converges quickly.
            failure_timeout: SimDuration::from_secs(4),
            ..MusicConfig::default()
        })
        .seed(7)
        .build();
    let sim = system.sim().clone();
    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));

    // Client API replicas insert three homing requests (no locks needed).
    {
        let replica = system.replica(0).clone();
        let h = sim.spawn(async move {
            for j in 0..3 {
                let job_id = format!("job-{j}");
                replica
                    .put(&job_id, job_value("PENDING", &format!("vnf-chain-{j}")))
                    .await
                    .expect("insert job");
            }
        });
        sim.run_until_complete(h);
        sim.run();
    }

    // A watchdog collects locks of crashed workers.
    let dog = Watchdog::new(system.replica(1).clone(), SimDuration::from_secs(1));
    for j in 0..3 {
        dog.watch(&format!("job-{j}"));
    }
    dog.spawn();

    // Three workers, one per site; the Oregon worker dies mid-job.
    for (i, (name, die)) in [
        ("worker-ohio", None),
        ("worker-ncal", None),
        ("worker-oregon", Some("TRANSLATED")),
    ]
    .into_iter()
    .enumerate()
    {
        let replica = system.replica(i).clone();
        let sim2 = sim.clone();
        let log2 = Rc::clone(&log);
        sim.spawn(async move { worker(name, replica, sim2, die, log2).await });
    }

    // Run until every job reports DONE (bounded virtual time).
    let deadline = SimTime::ZERO + SimDuration::from_secs(120);
    loop {
        sim.run_until(sim.now() + SimDuration::from_secs(1));
        let system2 = system.clone();
        let sim2 = sim.clone();
        let done = sim2.block_on(async move {
            let replica = system2.replica(0).clone();
            let mut done = 0;
            for j in 0..3 {
                if let Ok(Some(v)) = replica.get(&format!("job-{j}")).await {
                    if parse_job(&v).0 == "DONE" {
                        done += 1;
                    }
                }
            }
            done
        });
        if done == 3 {
            break;
        }
        assert!(sim.now() < deadline, "jobs did not finish in time");
    }
    dog.stop();

    println!("== VNF homing event log (virtual time {}) ==", sim.now());
    for line in log.borrow().iter() {
        println!("  {line}");
    }
    println!(
        "all 3 homing jobs DONE; watchdog preemptions: {}",
        dog.preemptions()
    );
    assert!(
        log.borrow().iter().any(|l| l.contains("CRASHED")),
        "the demo should include a worker crash"
    );
}
