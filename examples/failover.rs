//! False failure detection end to end: a network partition makes a live
//! lockholder look dead; another replica preempts it; the preempted
//! client's writes have no effect on the true value; the partition heals
//! and the client learns it is no longer the lockholder (§IV-B).
//!
//! ```text
//! cargo run --example failover
//! ```

use bytes::Bytes;
use music::{AcquireOutcome, CriticalError, MusicSystemBuilder};
use music_simnet::prelude::*;

fn main() {
    let system = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .seed(11)
        .build();
    let sim = system.sim().clone();
    let system2 = system.clone();

    let h = sim.spawn(async move {
        let ohio = system2.replica(0).clone();
        let oregon = system2.replica(2).clone();

        println!("== False failure detection (the hardest ECF scenario) ==");
        // Ohio's client takes the lock and writes.
        let a_ref = ohio.create_lock_ref("config").await.unwrap();
        while ohio.acquire_lock("config", a_ref).await.unwrap() != AcquireOutcome::Acquired {}
        ohio.critical_put("config", a_ref, Bytes::from_static(b"v1-from-ohio"))
            .await
            .unwrap();
        println!("  ohio holds {a_ref}, wrote v1-from-ohio");

        // Oregon cannot tell a slow Ohio from a dead one; it preempts.
        oregon.forced_release("config", a_ref).await.unwrap();
        println!("  oregon preempted {a_ref} (synchFlag set, ref dequeued)");

        // Oregon's client takes over; acquireLock synchronizes the store.
        let b_ref = oregon.create_lock_ref("config").await.unwrap();
        while oregon.acquire_lock("config", b_ref).await.unwrap() != AcquireOutcome::Acquired {}
        let inherited = oregon.critical_get("config", b_ref).await.unwrap();
        println!(
            "  oregon acquired {b_ref}; inherited latest state: {:?}",
            inherited
                .as_ref()
                .map(|v| String::from_utf8_lossy(v).into_owned())
        );
        assert_eq!(inherited, Some(Bytes::from_static(b"v1-from-ohio")));
        oregon
            .critical_put("config", b_ref, Bytes::from_static(b"v2-from-oregon"))
            .await
            .unwrap();

        // Ohio is alive the whole time and keeps writing. Its puts are
        // either rejected or land with a stale (smaller) timestamp: the
        // true value is untouched either way.
        let mut told = false;
        for i in 0..10 {
            match ohio
                .critical_put(
                    "config",
                    a_ref,
                    Bytes::from(format!("zombie-{i}").into_bytes()),
                )
                .await
            {
                Ok(()) => println!("  ohio write {i} acknowledged (stale stamp, no effect)"),
                Err(CriticalError::NoLongerHolder) => {
                    println!("  ohio told: youAreNoLongerLockHolder");
                    told = true;
                    break;
                }
                Err(e) => println!("  ohio write {i} rejected: {e}"),
            }
            system2.sim().sleep(SimDuration::from_millis(30)).await;
        }
        assert!(told, "the stale holder must eventually learn the truth");

        // Exclusivity: the lockholder still reads its own write.
        let v = oregon.critical_get("config", b_ref).await.unwrap();
        assert_eq!(v, Some(Bytes::from_static(b"v2-from-oregon")));
        println!("  true value remains v2-from-oregon — exclusivity held");
        oregon.release_lock("config", b_ref).await.unwrap();
    });
    sim.run_until_complete(h);
    println!("failover example finished at virtual time {}", sim.now());
}
