//! The Management Portal service of §VII-b: active replication with
//! fail-over, where each user's role updates are processed by exactly one
//! owning back-end replica from the latest state.
//!
//! Ownership is a long-lived MUSIC critical section: a back end becomes a
//! user's owner by (forcibly) taking the lock once, then serves many
//! `criticalPut`s under the same lock reference — amortizing the consensus
//! cost of locking across requests. When the owner fails, the front end
//! retries at the next-closest back end, which takes over ownership.
//!
//! ```text
//! cargo run --example portal
//! ```

use std::collections::HashMap;

use bytes::Bytes;
use music::{AcquireOutcome, LockRef, MusicReplica, MusicSystemBuilder};
use music_simnet::prelude::*;

/// A Portal back-end replica: processes role updates for users it owns.
struct BackEnd {
    name: &'static str,
    replica: MusicReplica,
    sim: Sim,
    /// Locally cached lock references for owned users.
    owned: HashMap<String, LockRef>,
    alive: bool,
}

impl BackEnd {
    fn owner_key(user: &str) -> String {
        format!("{user}-owner")
    }

    /// `own(userID)`: acquire the user's lock and publish ownership.
    async fn own(&mut self, user: &str) -> Result<LockRef, ()> {
        let lock_ref = self.replica.create_lock_ref(user).await.map_err(|_| ())?;
        loop {
            match self.replica.acquire_lock(user, lock_ref).await {
                Ok(AcquireOutcome::Acquired) => break,
                Ok(AcquireOutcome::NoLongerHolder) => return Err(()),
                _ => self.sim.sleep(SimDuration::from_millis(2)).await,
            }
        }
        // Publish (owner, lockRef) — no locks needed (§VII-b).
        self.replica
            .put(
                &Self::owner_key(user),
                Bytes::from(format!("{}|{}", self.name, lock_ref.value()).into_bytes()),
            )
            .await
            .map_err(|_| ())?;
        self.owned.insert(user.to_string(), lock_ref);
        Ok(lock_ref)
    }

    /// `write(userID, role)` at a back end: become owner if needed (forcibly
    /// releasing a failed predecessor), then one criticalPut.
    async fn write(&mut self, user: &str, role: &str) -> Result<(), ()> {
        if !self.alive {
            return Err(());
        }
        let lock_ref = match self.owned.get(user) {
            Some(r) => *r,
            None => {
                // Look up current ownership (cached in production).
                let details = self
                    .replica
                    .get(&Self::owner_key(user))
                    .await
                    .map_err(|_| ())?;
                match details {
                    None => self.own(user).await?, // first owner
                    Some(v) => {
                        let s = String::from_utf8(v.to_vec()).expect("utf8");
                        let (owner, prev_ref) = s.split_once('|').expect("owner|ref");
                        if owner == self.name {
                            LockRef::new(prev_ref.parse().expect("ref"))
                        } else {
                            // Previous owner presumed failed: take over.
                            let prev = LockRef::new(prev_ref.parse().expect("ref"));
                            self.replica
                                .forced_release(user, prev)
                                .await
                                .map_err(|_| ())?;
                            self.own(user).await?
                        }
                    }
                }
            }
        };
        self.replica
            .critical_put(user, lock_ref, Bytes::from(role.as_bytes().to_vec()))
            .await
            .map_err(|_| ())
    }
}

fn main() {
    let system = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .seed(3)
        .build();
    let sim = system.sim().clone();

    let mut backends: Vec<BackEnd> = (0..3)
        .map(|i| BackEnd {
            name: ["be-ohio", "be-ncal", "be-oregon"][i],
            replica: system.replica(i).clone(),
            sim: sim.clone(),
            owned: HashMap::new(),
            alive: true,
        })
        .collect();

    let system2 = system.clone();
    let h = sim.spawn(async move {
        // Front end routes alice's first requests; be-ohio becomes owner.
        println!("== Portal: role updates with single-owner semantics ==");
        for (round, role) in ["viewer", "editor", "admin"].iter().enumerate() {
            backends[0].write("alice", role).await.expect("owner write");
            println!("  round {round}: be-ohio wrote alice={role}");
        }

        // The owner fails; the front end retries at the next-closest
        // back end, which forcibly takes over ownership.
        backends[0].alive = false;
        println!("  be-ohio FAILS");
        let res = backends[0].write("alice", "suspended").await;
        assert!(res.is_err(), "dead backend cannot serve");
        backends[1]
            .write("alice", "suspended")
            .await
            .expect("takeover write");
        println!("  be-ncal took over and wrote alice=suspended");

        // Subsequent requests reuse be-ncal's cached lock reference: no
        // further consensus on the critical path.
        let t0 = backends[1].sim.now();
        backends[1]
            .write("alice", "restored")
            .await
            .expect("steady-state write");
        let steady = backends[1].sim.now() - t0;
        println!("  steady-state owner write took {steady} (one quorum put)");
        assert!(
            steady.as_millis() < 120,
            "owner writes must avoid consensus"
        );

        // The latest state is exactly the last processed update.
        let check = system2.replica(2).clone();
        let lock_ref = backends[1].owned["alice"];
        let v = check.critical_get("alice", lock_ref).await.ok().flatten();
        // (critical_get via another replica still sees the true value
        // because be-ncal holds the lock; read through the owner instead.)
        let v = match v {
            Some(v) => v,
            None => backends[1]
                .replica
                .critical_get("alice", lock_ref)
                .await
                .expect("owner read")
                .expect("value"),
        };
        assert_eq!(v, Bytes::from_static(b"restored"));
        println!("  final role: {}", String::from_utf8(v.to_vec()).unwrap());
    });
    sim.run_until_complete(h);
    println!("portal example finished at virtual time {}", sim.now());
}
