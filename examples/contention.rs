//! Lock contention and fairness: five clients across three sites race for
//! one key; grants follow lock-reference (request) order, and each holder
//! passes the latest state to the next.
//!
//! ```text
//! cargo run --example contention
//! ```

use bytes::Bytes;
use music::{MusicConfig, MusicSystemBuilder, OpKind, Watchdog};
use music_simnet::prelude::*;

fn main() {
    let system = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us_eu()) // the intercontinental profile
        .music_config(MusicConfig {
            failure_timeout: SimDuration::from_secs(3),
            ..MusicConfig::default()
        })
        .seed(99)
        .build();
    let sim = system.sim().clone();
    // Contended createLockRef races can strand orphan references (§IV-B);
    // a production deployment always runs the failure detector.
    let dog = Watchdog::new(system.replica(1).clone(), SimDuration::from_millis(500));
    dog.watch("ledger");
    dog.spawn();
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));

    println!("== 5 clients, 3 continents, 1 key ==");
    let mut handles = Vec::new();
    for c in 0..5 {
        let client = system.client_at_site(c % 3);
        let log = std::rc::Rc::clone(&log);
        let sim2 = sim.clone();
        handles.push(sim.spawn(async move {
            let cs = client.enter("ledger").await.expect("enter");
            let seen = cs.get().await.expect("get");
            let chain = match seen {
                Some(v) => format!("{} -> c{c}", String::from_utf8_lossy(&v)),
                None => format!("c{c}"),
            };
            cs.put(Bytes::from(chain.clone().into_bytes()))
                .await
                .expect("put");
            log.borrow_mut().push(format!(
                "c{c} (site {}) held lock {} at {} — chain: {chain}",
                c % 3,
                cs.lock_ref(),
                sim2.now(),
            ));
            cs.release().await.expect("release");
        }));
    }
    for h in handles {
        sim.run_until_complete(h);
    }

    for line in log.borrow().iter() {
        println!("  {line}");
    }

    // The final chain contains every client exactly once: no lost updates,
    // no duplicated holders.
    let system2 = system.clone();
    let final_chain = sim.block_on(async move {
        let cs = system2.client_at_site(0).enter("ledger").await.unwrap();
        let v = cs.get().await.unwrap().unwrap();
        cs.release().await.unwrap();
        String::from_utf8(v.to_vec()).unwrap()
    });
    println!("final chain: {final_chain}");
    let mut parts: Vec<&str> = final_chain.split(" -> ").collect();
    assert_eq!(parts.len(), 5);
    parts.sort_unstable();
    parts.dedup();
    assert_eq!(parts.len(), 5, "each client appears exactly once");

    dog.stop();
    println!(
        "grants followed request order; {} acquire polls were answered by the local peek",
        system.stats().count(OpKind::AcquirePeek)
    );
}
