//! Offline stand-in for the `rand` facade (API-compatible subset).
//!
//! The workspace builds hermetically — no network, no registry — so the
//! external `rand` crate is replaced by this vendored implementation of
//! exactly the surface the repo uses: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), the
//! deterministic [`rngs::SmallRng`] (xoshiro256++) and the test helper
//! [`rngs::mock::StepRng`].
//!
//! Statistical quality matters here: workload generators assert Zipfian
//! head probabilities and uniform spreads, so the generator is a real
//! xoshiro256++, not a toy LCG.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is used by
/// this workspace, so that is the trait's required method.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64
    /// (the expansion recommended by the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's natural domain; `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiplies a 64-bit draw into `[0, span)` without modulo bias
/// (Lemire's multiply-shift; the residual bias is < 2^-64 per draw).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    ///
    /// Matches the role (not the bit stream) of `rand`'s `SmallRng`:
    /// not cryptographically secure, excellent statistical quality,
    /// reproducible per seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0, 0, 0, 0] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// Returns `initial`, `initial + increment`, … — a predictable
        /// sequence for plumbing tests.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the stepping generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..32).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                lo += 1;
            }
        }
        assert!((4_500..5_500).contains(&lo), "half below 0.5, got {lo}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let f = r.gen_range(0.0..=0.0);
            assert_eq!(f, 0.0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(0, 1);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }
}
