//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses serde purely as a *compile-time marker* — configs
//! derive `Serialize`/`Deserialize` to guarantee they stay persistable
//! (C-SERDE), but no wire format crate is linked. These derives therefore
//! emit empty marker-trait impls. The `serde` helper attribute (e.g.
//! `#[serde(default)]`) is accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name (and simple generic parameter list, if any)
/// from a `struct`/`enum`/`union` item.
fn type_header(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde_derive stub: expected type name, got {other:?}"),
                };
                let mut params = Vec::new();
                if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    iter.next();
                    let mut depth = 1usize;
                    let mut current = String::new();
                    for tt in iter.by_ref() {
                        match &tt {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                params.push(std::mem::take(&mut current));
                                continue;
                            }
                            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                                panic!("serde_derive stub: generic bounds unsupported on `{name}`");
                            }
                            _ => {}
                        }
                        current.push_str(&tt.to_string());
                    }
                    if !current.is_empty() {
                        params.push(current);
                    }
                }
                return (name, params);
            }
        }
    }
    panic!("serde_derive stub: no struct/enum found in derive input");
}

fn marker_impl(input: TokenStream, serialize: bool) -> TokenStream {
    let (name, params) = type_header(input);
    let generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let code = if serialize {
        format!("impl{generics} ::serde::Serialize for {name}{generics} {{}}")
    } else {
        let mut with_de = vec!["'de".to_string()];
        with_de.extend(params.iter().cloned());
        format!(
            "impl<{}> ::serde::Deserialize<'de> for {name}{generics} {{}}",
            with_de.join(", ")
        )
    };
    code.parse()
        .expect("serde_derive stub: generated impl parses")
}

/// Marker derive for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}

/// Marker derive for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}
