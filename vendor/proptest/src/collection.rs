//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size specifications for [`vec`].
#[derive(Copy, Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let strat = vec(0u8..4, 1..10);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
        let exact = vec(0u8..4, 3usize);
        assert_eq!(exact.sample(&mut rng).len(), 3);
    }
}
