//! Test configuration and the deterministic case RNG.

/// Controls how many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (SplitMix64 over an FNV-1a hash
/// of the test path) — the same inputs are generated on every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a stable test identifier.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)` (multiply-shift, no modulo bias).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
