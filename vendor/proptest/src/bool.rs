//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `true` with probability `probability`.
pub fn weighted(probability: f64) -> Weighted {
    assert!(
        (0.0..=1.0).contains(&probability),
        "weight {probability} out of range"
    );
    Weighted { probability }
}

/// See [`weighted`].
#[derive(Copy, Clone, Debug)]
pub struct Weighted {
    probability: f64,
}

impl Strategy for Weighted {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_rate_is_roughly_right() {
        let mut rng = TestRng::deterministic("weighted");
        let w = weighted(0.2);
        let hits = (0..10_000).filter(|_| w.sample(&mut rng)).count();
        assert!((1_500..2_500).contains(&hits), "got {hits}");
        assert!(!weighted(0.0).sample(&mut rng));
        assert!(weighted(1.0).sample(&mut rng));
    }
}
