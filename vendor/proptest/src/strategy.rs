//! The [`Strategy`] trait and the combinators used by this workspace.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy backed by a sampling closure (used by
/// [`prop_compose!`](crate::prop_compose)).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice among boxed strategies
/// (built by [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String pattern strategies: a `&str` literal is interpreted as a simple
/// regex-like pattern of literal characters and `[...]` classes, each
/// optionally followed by `{n}`, `{m,n}`, `?`, `+`, or `*`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.reps.sample_count(rng);
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    reps: Reps,
}

enum Reps {
    Exactly(u32),
    Between(u32, u32),
}

impl Reps {
    fn sample_count(&self, rng: &mut TestRng) -> u32 {
        match *self {
            Reps::Exactly(n) => n,
            Reps::Between(lo, hi) => lo + rng.below(u64::from(hi - lo + 1)) as u32,
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pattern:?}"),
                        Some(']') => break,
                        Some('\\') => {
                            let esc = chars.next().expect("escape in character class");
                            class.push(esc);
                            prev = Some(esc);
                        }
                        Some('-') => {
                            // Range if bounded on both sides, else literal.
                            match (prev, chars.peek()) {
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    chars.next();
                                    let mut cur = lo as u32 + 1;
                                    while cur <= hi as u32 {
                                        class.push(char::from_u32(cur).expect("char range"));
                                        cur += 1;
                                    }
                                    prev = None;
                                }
                                _ => {
                                    class.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        Some(other) => {
                            class.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!class.is_empty(), "empty character class in {pattern:?}");
                class
            }
            '\\' => vec![chars.next().expect("escape at end of pattern")],
            other => vec![other],
        };
        let reps = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    None => Reps::Exactly(spec.trim().parse().expect("repeat count")),
                    Some((lo, hi)) => Reps::Between(
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                }
            }
            Some('?') => {
                chars.next();
                Reps::Between(0, 1)
            }
            Some('+') => {
                chars.next();
                Reps::Between(1, 8)
            }
            Some('*') => {
                chars.next();
                Reps::Between(0, 8)
            }
            _ => Reps::Exactly(1),
        };
        atoms.push(Atom {
            chars: choices,
            reps,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_sample_in_domain() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (1u64..6).sample(&mut rng);
            assert!((1..6).contains(&v));
            let m = (0u8..3).prop_map(|x| x * 2).sample(&mut rng);
            assert!(m <= 4 && m % 2 == 0);
            let (a, b) = (0usize..4, 10u64..12).sample(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    fn string_pattern_class_with_counts() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..200 {
            let s = "[a-z0-9/-]{1,24}".sample(&mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/' || c == '-'));
        }
        let lit = "user-\\d{3}";
        let s = lit.sample(&mut rng);
        assert!(s.starts_with("user-"));
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::deterministic("union");
        let u = crate::prop_oneof![(0u8..1).prop_map(|_| 1u8), (0u8..1).prop_map(|_| 2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
