//! Offline stand-in for `proptest` (API-compatible subset).
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use — `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, integer/float range strategies,
//! tuples, `collection::vec`, `bool::weighted`, and simple
//! character-class string patterns — over a deterministic per-test RNG.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its assertion message but is not minimized), and case generation is
//! seeded from the test's module path so runs are reproducible without a
//! persistence file.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}` — {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Builds a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:tt)*)
            ($($arg:ident in $strategy:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                $body
            })
        }
    };
}

/// Declares property tests: each `fn` runs its body over many sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_each! { ($config) $($rest)* }
    };
}
