//! Offline stand-in for `criterion` (API-compatible subset).
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock loop reporting ns/iter — enough to compare hot
//! paths locally, with none of the real crate's statistics.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            target_time: self.target_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("{id:<48} {ns:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("{id:<48} (no measurement)"),
        }
        self
    }
}

/// Per-benchmark measurement context.
pub struct Bencher {
    target_time: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: grow the batch until it is long enough to time.
        let mut iters: u64 = 1;
        let elapsed = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= self.target_time || iters >= 1 << 20 {
                break took;
            }
            let growth = if took.is_zero() {
                16
            } else {
                (self.target_time.as_nanos() / took.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(growth);
        };
        self.report = Some((iters, elapsed));
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = super::Criterion {
            target_time: std::time::Duration::from_micros(50),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }
}
