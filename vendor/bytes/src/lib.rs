//! Offline stand-in for the `bytes` crate (API-compatible subset).
//!
//! Provides [`Bytes`]: an immutable, cheaply clonable byte buffer. Static
//! slices are held by reference (so `from_static` is `const` and
//! zero-copy); owned data is shared behind an `Rc`-style reference count
//! (`Arc`, so the type stays `Send + Sync` like the real crate).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a new `Bytes` covering `range` of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        match &self.repr {
            Repr::Static(s) => Bytes::from_static(&s[start..end]),
            Repr::Shared(a) => Bytes::copy_from_slice(&a[start..end]),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAG: Bytes = Bytes::from_static(b"1");

    #[test]
    fn const_static_and_eq() {
        assert_eq!(FLAG, Bytes::copy_from_slice(b"1"));
        assert_eq!(FLAG.as_ref(), b"1");
        assert_eq!(Some(FLAG).as_deref(), Some(b"1".as_slice()));
    }

    #[test]
    fn from_vec_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
