//! Offline stand-in for `serde` (marker-trait subset).
//!
//! The workspace asserts at compile time that its config types are
//! serde-capable (`fn assert_serde<T: Serialize + for<'de> Deserialize<'de>>()`)
//! without linking a format crate, so these traits carry no methods; the
//! paired stub derives in `serde_derive` emit empty impls.

/// Marker for serializable types.
pub trait Serialize {}

/// Marker for deserializable types.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
