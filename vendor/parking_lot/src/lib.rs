//! Offline stand-in for `parking_lot` (Mutex subset).
//!
//! Wraps `std::sync::Mutex` with parking_lot's ergonomics: `lock()`
//! returns the guard directly (a poisoned std mutex is recovered rather
//! than propagated, matching parking_lot's no-poisoning semantics).

use std::sync::TryLockError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
